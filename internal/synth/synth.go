// Package synth generates deterministic synthetic combinational
// circuits.
//
// The original experiments of the DATE 2002 paper use ISCAS-89 and
// ITC-99 benchmark netlists, which are not redistributable here. synth
// produces stand-in circuits with matched coarse profiles (input
// count, gate count, depth) so that every algorithm code path —
// budgeted path enumeration, distance pruning, robust test generation,
// compaction, enrichment — is exercised on circuits of the same scale.
// Generation is fully deterministic in the profile seed.
package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
)

// Profile parameterizes a synthetic circuit.
type Profile struct {
	Name     string
	Seed     int64
	PIs      int     // number of primary inputs
	Gates    int     // number of gates
	Levels   int     // target logic depth in gate levels
	MaxFanin int     // maximum gate fanin (≥ 2)
	XorFrac  float64 // fraction of XOR/XNOR gates
	InvFrac  float64 // fraction of NOT/BUF gates
}

// Validate checks the profile for obvious nonsense.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("synth: profile needs a name")
	case p.PIs < 2:
		return fmt.Errorf("synth: %s: need at least 2 inputs", p.Name)
	case p.Gates < 1:
		return fmt.Errorf("synth: %s: need at least 1 gate", p.Name)
	case p.Levels < 1:
		return fmt.Errorf("synth: %s: need at least 1 level", p.Name)
	case p.MaxFanin < 2:
		return fmt.Errorf("synth: %s: MaxFanin must be ≥ 2", p.Name)
	case p.XorFrac < 0 || p.XorFrac > 1 || p.InvFrac < 0 || p.InvFrac > 1:
		return fmt.Errorf("synth: %s: gate fractions must be within [0,1]", p.Name)
	}
	return nil
}

// Generate builds the circuit described by the profile.
func Generate(p Profile) (*circuit.Circuit, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	b := circuit.NewBuilder(p.Name)

	type netInfo struct {
		handle int
		level  int
		uses   int
	}
	nets := make([]netInfo, 0, p.PIs+p.Gates)
	for i := 0; i < p.PIs; i++ {
		h := b.AddInput(fmt.Sprintf("I%d", i))
		nets = append(nets, netInfo{handle: h, level: 0})
	}

	// Gates are distributed over levels 1..Levels, wider in the
	// middle, and each gate draws its first input from the previous
	// level so that long sensitizable chains exist.
	levelOf := make([]int, p.Gates)
	for i := range levelOf {
		levelOf[i] = 1 + i*p.Levels/p.Gates
	}

	// pick selects a net from levels < level, biased towards recent
	// levels and towards nets with few uses, avoiding those in taken.
	pick := func(level int, taken []int, preferPrev bool) int {
		best := -1
		bestScore := -1.0
		tries := 8
	candidates:
		for t := 0; t < tries; t++ {
			i := rng.Intn(len(nets))
			n := nets[i]
			if n.level >= level {
				continue
			}
			for _, tk := range taken {
				if tk == i {
					continue candidates
				}
			}
			score := rng.Float64()
			if preferPrev && n.level == level-1 {
				score += 2
			}
			score += 0.5 / float64(1+n.uses)
			if score > bestScore {
				bestScore = score
				best = i
			}
		}
		return best
	}

	gateType := func() circuit.GateType {
		r := rng.Float64()
		switch {
		case r < p.InvFrac:
			if rng.Intn(4) == 0 {
				return circuit.Buf
			}
			return circuit.Not
		case r < p.InvFrac+p.XorFrac:
			if rng.Intn(2) == 0 {
				return circuit.Xnor
			}
			return circuit.Xor
		default:
			switch rng.Intn(4) {
			case 0:
				return circuit.And
			case 1:
				return circuit.Nand
			case 2:
				return circuit.Or
			default:
				return circuit.Nor
			}
		}
	}

	for gi := 0; gi < p.Gates; gi++ {
		level := levelOf[gi]
		gt := gateType()
		fanin := 1
		if gt != circuit.Not && gt != circuit.Buf {
			fanin = 2
			if p.MaxFanin > 2 && rng.Intn(4) == 0 {
				fanin = 2 + rng.Intn(p.MaxFanin-1)
			}
		}
		var ins []int
		var taken []int
		for k := 0; k < fanin; k++ {
			idx := pick(level, taken, k == 0)
			if idx < 0 {
				break
			}
			taken = append(taken, idx)
			ins = append(ins, nets[idx].handle)
		}
		if len(ins) == 0 {
			// Degenerate random draw: fall back to any net below level.
			for i := range nets {
				if nets[i].level < level {
					taken = append(taken, i)
					ins = append(ins, nets[i].handle)
					break
				}
			}
		}
		if len(ins) == 1 && gt != circuit.Not && gt != circuit.Buf {
			gt = circuit.Not
		}
		h := b.AddGate(gt, fmt.Sprintf("N%d", p.PIs+gi), ins...)
		for _, i := range taken {
			nets[i].uses++
		}
		nets = append(nets, netInfo{handle: h, level: level})
	}

	// Every net without a consumer becomes a primary output; this
	// guarantees a legal circuit and a natural output count.
	for _, n := range nets {
		if n.uses == 0 {
			b.MarkOutput(n.handle)
		}
	}
	return b.Build()
}

// MustGenerate is Generate for known-good profiles; it panics on error.
func MustGenerate(p Profile) *circuit.Circuit {
	c, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return c
}
