package synth

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestSequentialSourceParses(t *testing.T) {
	p := BenchmarkProfiles["b09"]
	src, err := SequentialSource(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := bench.Parse("b09-seq", strings.NewReader(src))
	if err != nil {
		t.Fatalf("generated source does not parse: %v\n%s", err, src)
	}
	c, st, err := nl.CombinationalWithState()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumFF() != 8 {
		t.Errorf("NumFF = %d, want 8", st.NumFF())
	}
	if st.NumPI != p.PIs-8 {
		t.Errorf("NumPI = %d, want %d", st.NumPI, p.PIs-8)
	}
	// The extraction restores the full combinational input count.
	if got := len(c.PIs); got != p.PIs {
		t.Errorf("combinational inputs = %d, want %d", got, p.PIs)
	}
	cst := c.Stats()
	if cst.Gates != p.Gates {
		t.Errorf("gates = %d, want %d", cst.Gates, p.Gates)
	}
}

func TestSequentialSourceDeterministic(t *testing.T) {
	p := BenchmarkProfiles["b03"]
	a, err := SequentialSource(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SequentialSource(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("sequential generation not deterministic")
	}
}

func TestSequentialSourceErrors(t *testing.T) {
	p := BenchmarkProfiles["b03"]
	if _, err := SequentialSource(p, 0); err == nil {
		t.Error("nFF=0 must fail")
	}
	if _, err := SequentialSource(p, p.PIs); err == nil {
		t.Error("nFF=PIs must fail")
	}
	if _, err := SequentialSource(p, 10000); err == nil {
		t.Error("huge nFF must fail")
	}
}
