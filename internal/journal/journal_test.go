package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, recs
}

func appendT(t *testing.T, l *Log, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append(%+v): %v", r, err)
		}
	}
}

func submitted(id string, seq int64) Record {
	return Record{Op: OpSubmitted, JobID: id, Seq: seq, Spec: json.RawMessage(`{"kind":"enrich","circuit":"s27"}`)}
}

func walPath(dir string) string { return filepath.Join(dir, fileName) }

func TestJournalRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, recs := openT(t, dir)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		submitted("j1", 1),
		{Op: OpStarted, JobID: "j1", Seq: 1, Attempt: 1},
		{Op: OpStage, JobID: "j1", Seq: 1, Stage: "prepare"},
		{Op: OpDone, JobID: "j1", Seq: 1, Digest: "abc/def/123", Attempt: 1},
	}
	appendT(t, l, want...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Op: OpStarted, JobID: "j9"}); err == nil {
		t.Error("Append after Close must fail")
	}

	l2, got := openT(t, dir)
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].JobID != want[i].JobID ||
			got[i].Stage != want[i].Stage || got[i].Digest != want[i].Digest ||
			got[i].Seq != want[i].Seq || got[i].Attempt != want[i].Attempt {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if string(got[0].Spec) != string(want[0].Spec) {
		t.Errorf("spec payload %s, want %s", got[0].Spec, want[0].Spec)
	}
}

// A crash mid-write leaves a torn record at the tail; replay must
// recover every intact record, drop the tail, and keep appending.
func TestJournalTornTailRecovery(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func(t *testing.T, path string)
	}{
		{"garbage-appended", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.Write([]byte{0x13, 0x37}) // torn header
			f.Close()
		}},
		{"payload-truncated", func(t *testing.T, path string) {
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, st.Size()-3); err != nil {
				t.Fatal(err)
			}
		}},
		{"payload-bitflip", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)-2] ^= 0xff // inside the last payload → CRC mismatch
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"absurd-length-prefix", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			// Header claiming a 4GB-ish record, then nothing.
			f.Write([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4})
			f.Close()
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openT(t, dir)
			appendT(t, l,
				submitted("j1", 1),
				Record{Op: OpStarted, JobID: "j1", Seq: 1},
				Record{Op: OpDone, JobID: "j1", Seq: 1},
			)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			tc.mut(t, walPath(dir))

			l2, recs := openT(t, dir)
			wantIntact := 3
			if tc.name == "payload-truncated" || tc.name == "payload-bitflip" {
				wantIntact = 2 // the last record itself is the casualty
			}
			if len(recs) != wantIntact {
				t.Fatalf("replayed %d records after %s, want %d", len(recs), tc.name, wantIntact)
			}
			// The corrupt tail is gone: appends land cleanly and a
			// further replay sees them.
			appendT(t, l2, submitted("j2", 2))
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			l3, recs3 := openT(t, dir)
			defer l3.Close()
			if len(recs3) != wantIntact+1 {
				t.Fatalf("after recovery+append replayed %d, want %d", len(recs3), wantIntact+1)
			}
			last := recs3[len(recs3)-1]
			if last.Op != OpSubmitted || last.JobID != "j2" {
				t.Errorf("appended record corrupted: %+v", last)
			}
		})
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir)
	appendT(t, l,
		submitted("j1", 1),
		Record{Op: OpStarted, JobID: "j1", Seq: 1},
		Record{Op: OpStage, JobID: "j1", Seq: 1, Stage: "prepare"},
		Record{Op: OpDone, JobID: "j1", Seq: 1},
		submitted("j2", 2),
		Record{Op: OpStarted, JobID: "j2", Seq: 2},
		submitted("j3", 3),
		Record{Op: OpStarted, JobID: "j3", Seq: 3},
		Record{Op: OpFailed, JobID: "j3", Seq: 3, Error: "boom"},
	)
	before, err := l.Size()
	if err != nil {
		t.Fatal(err)
	}
	if n := l.AppendedSinceCompact(); n != 9 {
		t.Errorf("AppendedSinceCompact = %d, want 9", n)
	}

	if live := Live(nil); live != nil {
		t.Errorf("Live(nil) = %v", live)
	}
	// Only j2 must survive compaction (j1 done, j3 failed).
	keep := Live([]Record{
		submitted("j1", 1), {Op: OpDone, JobID: "j1", Seq: 1},
		submitted("j2", 2), {Op: OpStarted, JobID: "j2", Seq: 2},
		submitted("j3", 3), {Op: OpFailed, JobID: "j3", Seq: 3},
	})
	if len(keep) != 1 || keep[0].JobID != "j2" || keep[0].Op != OpSubmitted {
		t.Fatalf("Live kept %+v, want j2's submitted record", keep)
	}
	if err := l.Compact(keep); err != nil {
		t.Fatal(err)
	}
	after, err := l.Size()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("compaction did not shrink the log: %d → %d bytes", before, after)
	}
	if n := l.AppendedSinceCompact(); n != 0 {
		t.Errorf("AppendedSinceCompact after Compact = %d, want 0", n)
	}
	// Appends continue on the compacted log.
	appendT(t, l, Record{Op: OpDone, JobID: "j2", Seq: 2})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l3, recs3 := openT(t, dir)
	defer l3.Close()
	if len(recs3) != 2 {
		t.Fatalf("replayed %d records after compaction, want 2: %+v", len(recs3), recs3)
	}
	if recs3[0].JobID != "j2" || recs3[0].Op != OpSubmitted {
		t.Errorf("first surviving record %+v, want j2 submitted", recs3[0])
	}
	if len(Live(recs3)) != 0 {
		t.Errorf("j2 finished post-compaction but Live still lists it")
	}
}

func TestLiveOrderAndDedup(t *testing.T) {
	recs := []Record{
		// Out-of-lifecycle-order interleaving: started lands before
		// submitted (concurrent writers), terminal in the middle.
		{Op: OpStarted, JobID: "j2", Seq: 2},
		submitted("j1", 1),
		{Op: OpCanceled, JobID: "j1", Seq: 1},
		submitted("j2", 2),
		submitted("j3", 3),
		{Op: OpRetrying, JobID: "j3", Seq: 3, Attempt: 1, Error: "flaky"},
		submitted("j2", 2), // duplicate (replayed journal re-journaled)
	}
	live := Live(recs)
	if len(live) != 2 || live[0].JobID != "j2" || live[1].JobID != "j3" {
		t.Fatalf("Live = %+v, want [j2 j3]", live)
	}
	if got := MaxSeq(recs); got != 3 {
		t.Errorf("MaxSeq = %d, want 3", got)
	}
}

func TestOpenCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "journal")
	l, recs := openT(t, dir)
	defer l.Close()
	if len(recs) != 0 {
		t.Fatalf("fresh nested journal replayed %d records", len(recs))
	}
	appendT(t, l, submitted("j1", 1))
}

func TestOpenBadDir(t *testing.T) {
	if _, _, err := Open("/dev/null/not-a-dir"); err == nil {
		t.Error("Open under a non-directory must fail")
	}
}
