// Package journal is the engine's durable job journal: an append-only,
// length-prefixed, CRC-checked write-ahead log of job lifecycle
// records. Opening a journal replays it, truncating a torn or corrupt
// tail (the expected artifact of a crash mid-write) instead of
// erroring; Live distills the replayed records into the jobs a
// restarted engine must re-enqueue; Compact rewrites the log to just
// those, bounding its growth.
//
// On-disk framing, per record:
//
//	uint32 LE  payload length n
//	uint32 LE  CRC-32 (IEEE) of the payload
//	n bytes    payload (JSON-encoded Record)
//
// Records of one job are appended by concurrent writers (submitter,
// worker), so they may interleave out of lifecycle order; replay is
// order-insensitive (a terminal record retires its job wherever it
// sits).
package journal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Op is a job lifecycle transition.
type Op string

// The journaled lifecycle transitions.
const (
	OpSubmitted Op = "submitted" // job accepted; Spec and Seq recorded
	OpStarted   Op = "started"   // an attempt began running
	OpStage     Op = "stage"     // a pipeline stage completed
	OpRetrying  Op = "retrying"  // attempt failed; backoff scheduled
	OpDone      Op = "done"      // terminal: result produced (Digest = cache key)
	OpFailed    Op = "failed"    // terminal: retries exhausted
	OpCanceled  Op = "canceled"  // terminal: canceled by a caller
)

// Terminal reports whether the op retires its job: a job whose record
// stream contains a terminal op is not replayed.
func (o Op) Terminal() bool { return o == OpDone || o == OpFailed || o == OpCanceled }

// Record is one journal entry. Only Op and JobID are always set; the
// rest depend on the op (see the Op constants).
type Record struct {
	Op    Op     `json:"op"`
	JobID string `json:"job"`
	Seq   int64  `json:"seq,omitempty"`
	// Tenant is the job's scheduling tenant, recorded on OpSubmitted
	// so replay tooling can partition a journal without decoding every
	// Spec (the Spec's own tenant field is what Restore schedules by).
	Tenant  string          `json:"tenant,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
	Stage   string          `json:"stage,omitempty"`
	Digest  string          `json:"digest,omitempty"`
	Attempt int             `json:"attempt,omitempty"`
	Error   string          `json:"error,omitempty"`
}

const (
	fileName = "journal.wal"
	// maxRecord rejects absurd length prefixes when scanning a
	// corrupted log (a 16MiB record is orders of magnitude beyond any
	// real Spec).
	maxRecord = 16 << 20
)

// Log is an open journal. All methods are safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	appended int // records appended since Open or the last Compact
}

// Open opens (creating as needed) the journal in dir and replays it,
// returning the decoded records. A torn or corrupt tail — short
// header, short payload, CRC mismatch, undecodable JSON — is
// truncated away so appends resume from the last intact record; it is
// recovery, not an error.
func Open(dir string) (*Log, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, fileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	recs, valid, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if st.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncating corrupt tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	return &Log{path: path, f: f}, recs, nil
}

// scan decodes records from the start of f, stopping at the first
// frame that does not check out and reporting the byte offset of the
// end of the last intact record. Only I/O errors other than EOF are
// returned as errors.
func scan(f *os.File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	br := bufio.NewReader(f)
	var (
		recs  []Record
		valid int64
	)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return recs, valid, nil // clean end or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecord {
			return recs, valid, nil // garbage length prefix
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return recs, valid, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, valid, nil // corrupt payload
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, valid, nil // checksummed but undecodable
		}
		recs = append(recs, rec)
		valid += int64(8 + n)
	}
}

func frame(payload []byte) []byte {
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	return buf
}

// Append writes one record and syncs it to stable storage.
func (l *Log) Append(r Record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("journal: closed")
	}
	if _, err := l.f.Write(frame(payload)); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	l.appended++
	return nil
}

// AppendedSinceCompact returns the records appended since Open or the
// last successful Compact; callers use it to pace compaction.
func (l *Log) AppendedSinceCompact() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Compact atomically replaces the log's contents with keep: the new
// log is written beside the old one, synced, and renamed over it, so
// a crash at any point leaves either the old or the new log intact.
func (l *Log) Compact(keep []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("journal: closed")
	}
	tmpPath := l.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for _, r := range keep {
		payload, err := json.Marshal(r)
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("journal: %w", err)
		}
		if _, err := w.Write(frame(payload)); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("journal: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("journal: %w", err)
	}
	syncDir(filepath.Dir(l.path))
	// The old handle now points at the unlinked inode; reopen for
	// appending at the end of the compacted log.
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopening after compact: %w", err)
	}
	l.f.Close()
	l.f = f
	l.appended = 0
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash;
// failure is ignored (some filesystems reject directory syncs).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Size returns the log's current byte size.
func (l *Log) Size() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, fmt.Errorf("journal: closed")
	}
	st, err := l.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close syncs and closes the log. Appends after Close fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Live distills replayed records into the OpSubmitted records of jobs
// with no terminal record, in original submission order — exactly the
// set a restarted engine must re-enqueue, and the set Compact keeps.
func Live(recs []Record) []Record {
	terminal := make(map[string]bool)
	for _, r := range recs {
		if r.Op.Terminal() {
			terminal[r.JobID] = true
		}
	}
	var out []Record
	seen := make(map[string]bool)
	for _, r := range recs {
		if r.Op == OpSubmitted && !terminal[r.JobID] && !seen[r.JobID] {
			seen[r.JobID] = true
			out = append(out, r)
		}
	}
	return out
}

// MaxSeq returns the highest Seq across recs, for restoring an
// engine's job-ID counter past every journaled job.
func MaxSeq(recs []Record) int64 {
	var max int64
	for _, r := range recs {
		if r.Seq > max {
			max = r.Seq
		}
	}
	return max
}
