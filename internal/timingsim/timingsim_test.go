package timingsim

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/faultsim"
	"repro/internal/justify"
	"repro/internal/pathenum"
	"repro/internal/robust"
	"repro/internal/tval"
)

func TestSimulateInverterChain(t *testing.T) {
	b := circuit.NewBuilder("chain")
	a := b.AddInput("a")
	n1 := b.AddGate(circuit.Not, "n1", a)
	n2 := b.AddGate(circuit.Not, "n2", n1)
	b.MarkOutput(n2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	delays := UniformDelays(c, 2)
	test := circuit.TwoPattern{P1: []tval.V{tval.Zero}, P3: []tval.V{tval.One}}
	r, err := Simulate(c, delays, test)
	if err != nil {
		t.Fatal(err)
	}
	// a rises at t=2, n1 falls at 4, n2 rises at 6.
	n2l := c.LineByName("n2")
	wf := r.Waveforms[n2l.ID]
	if wf[0].V != tval.Zero {
		t.Errorf("n2 initial = %v, want 0", wf[0].V)
	}
	if wf.Settled() != tval.One {
		t.Errorf("n2 settled = %v, want 1", wf.Settled())
	}
	if got := wf.SettleTime(); got != 6 {
		t.Errorf("n2 settles at %d, want 6", got)
	}
	if r.SettleTime() != 6 {
		t.Errorf("circuit settles at %d, want 6", r.SettleTime())
	}
	if wf.At(5) != tval.Zero || wf.At(6) != tval.One {
		t.Error("At() misreads the waveform")
	}
}

func TestSimulateGlitch(t *testing.T) {
	// y = AND(a, NOT(a)): a rising input creates a static-0 hazard
	// whose width equals the inverter delay.
	b := circuit.NewBuilder("glitch")
	a := b.AddInput("a")
	n := b.AddGate(circuit.Not, "n", a)
	y := b.AddGate(circuit.And, "y", a, n)
	b.MarkOutput(y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	delays := UniformDelays(c, 1)
	test := circuit.TwoPattern{P1: []tval.V{tval.Zero}, P3: []tval.V{tval.One}}
	r, err := Simulate(c, delays, test)
	if err != nil {
		t.Fatal(err)
	}
	y2 := c.LineByName("y")
	wf := r.Waveforms[y2.ID]
	// Initial 0, glitch to 1 when a's rise reaches the AND before n's
	// fall, back to 0.
	if len(wf) != 3 {
		t.Fatalf("expected a glitch (3 waveform entries), got %v", wf)
	}
	if wf.Settled() != tval.Zero {
		t.Errorf("settled = %v, want 0", wf.Settled())
	}
	if wf[1].V != tval.One {
		t.Errorf("glitch value = %v, want 1", wf[1].V)
	}
}

func TestPathDelayHelpers(t *testing.T) {
	c := bench.S27()
	d := UniformDelays(c, 1)
	g2 := c.LineByName("G2")
	g13 := c.LineByName("G13")
	path := []int{g2.ID, g13.ID}
	if got := d.PathDelay(path); got != 2 {
		t.Errorf("PathDelay = %d, want 2", got)
	}
	d2 := d.WithExtraOnPath(path, 5)
	if got := d2.PathDelay(path); got != 7 {
		t.Errorf("after injection PathDelay = %d, want 7", got)
	}
	if d.PathDelay(path) != 2 {
		t.Error("injection must not mutate the original assignment")
	}
}

// TestRobustTestsDetectUnderAnyDelays is the end-to-end validation of
// the whole flow: for every robustly testable fault of s27 with a
// generated test, and for many random delay assignments, injecting
// enough extra delay on the faulty path makes the sampled output value
// wrong — the defining guarantee of robust tests.
func TestRobustTestsDetectUnderAnyDelays(t *testing.T) {
	c := bench.S27()
	res, err := pathenum.Enumerate(c, pathenum.Config{Mode: pathenum.DistancePruned})
	if err != nil {
		t.Fatal(err)
	}
	kept, _ := robust.Screen(c, res.Faults)
	j := justify.New(c, justify.Config{Seed: 31})
	rng := rand.New(rand.NewSource(99))
	validated := 0
	for i := range kept {
		f := &kept[i].Fault
		test, ok := j.Justify(&kept[i].Alts[0])
		if !ok {
			continue
		}
		if !faultsim.Detects(c, test, &kept[i]) {
			t.Fatalf("generated test does not detect its fault in logic simulation")
		}
		for trial := 0; trial < 20; trial++ {
			delays := make(Delays, len(c.Lines))
			for l := range delays {
				delays[l] = 1 + rng.Intn(9)
			}
			ff, err := Simulate(c, delays, test)
			if err != nil {
				t.Fatal(err)
			}
			// Clock period: the fault-free circuit settles in time.
			period := ff.SettleTime()
			// Inject enough extra delay that the faulty path exceeds
			// the period.
			extra := period - delays.PathDelay(f.Path) + 1 + rng.Intn(5)
			if extra <= 0 {
				extra = 1
			}
			faulty := delays.WithExtraOnPath(f.Path, extra)
			fr, err := Simulate(c, faulty, test)
			if err != nil {
				t.Fatal(err)
			}
			if !Detected(fr, f.Path, period, ff) {
				t.Fatalf("robust test missed fault %s under delays %v (period %d, extra %d)\ntest %v",
					f.Format(c), delays, period, extra, test)
			}
			validated++
		}
	}
	if validated == 0 {
		t.Fatal("no validations performed")
	}
	t.Logf("validated robust detection in %d fault × delay-assignment combinations", validated)
}

// TestFaultFreeCircuitPassesAtPeriod: sanity — without injection, the
// sampled value at the settle-time period equals the expected value.
func TestFaultFreeCircuitPassesAtPeriod(t *testing.T) {
	c := bench.S27()
	rng := rand.New(rand.NewSource(5))
	test := circuit.TwoPattern{
		P1: make([]tval.V, len(c.PIs)),
		P3: make([]tval.V, len(c.PIs)),
	}
	for i := range test.P1 {
		test.P1[i] = tval.V(rng.Intn(2))
		test.P3[i] = tval.V(rng.Intn(2))
	}
	delays := make(Delays, len(c.Lines))
	for l := range delays {
		delays[l] = 1 + rng.Intn(5)
	}
	r, err := Simulate(c, delays, test)
	if err != nil {
		t.Fatal(err)
	}
	period := r.SettleTime()
	for _, po := range c.POs {
		if got := r.Waveforms[po].At(period); got != r.Waveforms[po].Settled() {
			t.Errorf("PO %s wrong at its own settle time", c.Lines[po].Name)
		}
	}
}

// TestSettledMatchesLogicSimulation: the timing simulator's settled
// state must agree with the zero-delay logic simulation of the second
// pattern, for random tests and random delays.
func TestSettledMatchesLogicSimulation(t *testing.T) {
	c := bench.S27()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		test := circuit.TwoPattern{
			P1: make([]tval.V, len(c.PIs)),
			P3: make([]tval.V, len(c.PIs)),
		}
		for i := range test.P1 {
			test.P1[i] = tval.V(rng.Intn(2))
			test.P3[i] = tval.V(rng.Intn(2))
		}
		delays := make(Delays, len(c.Lines))
		for l := range delays {
			delays[l] = 1 + rng.Intn(7)
		}
		r, err := Simulate(c, delays, test)
		if err != nil {
			t.Fatal(err)
		}
		want := test.Simulate(c) // three-plane logic simulation
		for id := range c.Lines {
			if got := r.Waveforms[id].Settled(); got != want[id].P3() {
				t.Fatalf("trial %d line %s: timing settles to %v, logic says %v",
					trial, c.Lines[id].Name, got, want[id].P3())
			}
			if init := r.Waveforms[id][0].V; init != want[id].P1() {
				t.Fatalf("trial %d line %s: initial %v, logic says %v",
					trial, c.Lines[id].Name, init, want[id].P1())
			}
		}
	}
}

func TestSimulateRejectsPartialTest(t *testing.T) {
	c := bench.S27()
	test := circuit.TwoPattern{
		P1: make([]tval.V, len(c.PIs)),
		P3: make([]tval.V, len(c.PIs)),
	}
	for i := range test.P1 {
		test.P1[i] = tval.X
		test.P3[i] = tval.X
	}
	if _, err := Simulate(c, UniformDelays(c, 1), test); err == nil {
		t.Error("partial test must be rejected")
	}
}

func TestSimulateRejectsWrongDelayCount(t *testing.T) {
	c := bench.S27()
	test := circuit.TwoPattern{
		P1: make([]tval.V, len(c.PIs)),
		P3: make([]tval.V, len(c.PIs)),
	}
	if _, err := Simulate(c, Delays{1, 2}, test); err == nil {
		t.Error("wrong delay count must be rejected")
	}
}

func TestWithExtraDistributed(t *testing.T) {
	c := bench.S27()
	d := UniformDelays(c, 1)
	g1 := c.LineByName("G1")
	g12 := c.LineByName("G12")
	br := c.LineByName("G12->G13")
	g13 := c.LineByName("G13")
	path := []int{g1.ID, g12.ID, br.ID, g13.ID}
	d2 := d.WithExtraDistributed(path, 10)
	if got := d2.PathDelay(path) - d.PathDelay(path); got != 10 {
		t.Errorf("distributed extra sums to %d, want 10", got)
	}
	// 10 over 4 lines: 3,3,2,2.
	if d2[g1.ID] != 4 || d2[g12.ID] != 4 || d2[br.ID] != 3 || d2[g13.ID] != 3 {
		t.Errorf("distribution wrong: %d %d %d %d",
			d2[g1.ID], d2[g12.ID], d2[br.ID], d2[g13.ID])
	}
	if d.PathDelay(path) != 4 {
		t.Error("original mutated")
	}
	// Degenerate inputs.
	if got := d.WithExtraDistributed(nil, 5).PathDelay(path); got != 4 {
		t.Error("empty path must be a no-op")
	}
	if got := d.WithExtraDistributed(path, 0).PathDelay(path); got != 4 {
		t.Error("zero extra must be a no-op")
	}
}

// TestDistributedDefectStillRobustlyDetected: robust tests also catch
// the distributed-defect mechanism.
func TestDistributedDefectStillRobustlyDetected(t *testing.T) {
	c := bench.S27()
	res, err := pathenum.Enumerate(c, pathenum.Config{Mode: pathenum.DistancePruned})
	if err != nil {
		t.Fatal(err)
	}
	kept, _ := robust.Screen(c, res.Faults)
	j := justify.New(c, justify.Config{Seed: 77})
	rng := rand.New(rand.NewSource(42))
	checked := 0
	for i := range kept {
		f := &kept[i].Fault
		test, ok := j.Justify(&kept[i].Alts[0])
		if !ok {
			continue
		}
		delays := make(Delays, len(c.Lines))
		for l := range delays {
			delays[l] = 1 + rng.Intn(6)
		}
		ff, err := Simulate(c, delays, test)
		if err != nil {
			t.Fatal(err)
		}
		period := ff.SettleTime()
		extra := period - delays.PathDelay(f.Path) + 3
		if extra <= 0 {
			extra = 3
		}
		faulty, err := Simulate(c, delays.WithExtraDistributed(f.Path, extra), test)
		if err != nil {
			t.Fatal(err)
		}
		if !Detected(faulty, f.Path, period, ff) {
			t.Fatalf("distributed defect missed on %s", f.Format(c))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}
