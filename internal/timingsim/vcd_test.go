package timingsim

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/tval"
)

func TestWriteVCD(t *testing.T) {
	c := bench.S27()
	test := circuit.TwoPattern{
		P1: make([]tval.V, len(c.PIs)),
		P3: make([]tval.V, len(c.PIs)),
	}
	for i := range test.P1 {
		test.P1[i] = tval.Zero
		test.P3[i] = tval.V(i % 2)
	}
	r, err := Simulate(c, UniformDelays(c, 2), test)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteVCD(&sb, c, r, "1ns"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module s27 $end",
		"$var wire 1",
		"$enddefinitions $end",
		"#0",
		"$dumpvars",
		"G17",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// There must be value changes after time 0 (inputs toggle).
	if !strings.Contains(out, "#2") {
		t.Error("no transitions at the PI delay time")
	}
	// Branch lines must not appear as variables.
	if strings.Contains(out, "->") {
		t.Error("branch lines leaked into the VCD")
	}
	// Variable count equals net count (PIs + gates).
	if got, want := strings.Count(out, "$var wire 1"), len(c.PIs)+len(c.Gates); got != want {
		t.Errorf("VCD declares %d wires, want %d", got, want)
	}
}

func TestVCDIdentifiers(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 200; i++ {
		id := vcdID(i)
		if id == "" || seen[id] {
			t.Fatalf("identifier %d (%q) empty or duplicate", i, id)
		}
		seen[id] = true
		for _, r := range id {
			if r < 33 || r > 126 {
				t.Fatalf("identifier %q has non-printable rune", id)
			}
		}
	}
}

func TestVCDNameSanitize(t *testing.T) {
	if vcdName("a b\tc") != "a_b_c" {
		t.Error("whitespace not sanitized")
	}
	if vcdName("") != "_" {
		t.Error("empty name not handled")
	}
}
