package timingsim

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/circuit"
	"repro/internal/tval"
)

// WriteVCD dumps a timing simulation result as a Value Change Dump
// (IEEE 1364) that standard waveform viewers open. Branch lines mirror
// their stems and are omitted; one VCD wire is emitted per net, named
// after the net's signal.
func WriteVCD(w io.Writer, c *circuit.Circuit, r *Result, timescale string) error {
	if timescale == "" {
		timescale = "1ns"
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$date\n    (generated)\n$end\n")
	fmt.Fprintf(bw, "$version\n    repro timingsim\n$end\n")
	fmt.Fprintf(bw, "$timescale %s $end\n", timescale)
	fmt.Fprintf(bw, "$scope module %s $end\n", vcdName(c.Name))

	// One identifier per net line, deterministic order by line ID.
	var nets []int
	for id := range c.Lines {
		if c.Lines[id].Kind != circuit.LineBranch {
			nets = append(nets, id)
		}
	}
	ids := make(map[int]string, len(nets))
	for i, net := range nets {
		ids[net] = vcdID(i)
		fmt.Fprintf(bw, "$var wire 1 %s %s $end\n", ids[net], vcdName(c.Lines[net].Name))
	}
	fmt.Fprintf(bw, "$upscope $end\n$enddefinitions $end\n")

	// Initial values.
	fmt.Fprintf(bw, "#0\n$dumpvars\n")
	for _, net := range nets {
		fmt.Fprintf(bw, "%s%s\n", vcdValue(r.Waveforms[net][0].V), ids[net])
	}
	fmt.Fprintf(bw, "$end\n")

	// Merge all transitions in time order.
	type change struct {
		t   int
		net int
		v   tval.V
	}
	var changes []change
	for _, net := range nets {
		for _, tr := range r.Waveforms[net][1:] {
			changes = append(changes, change{tr.T, net, tr.V})
		}
	}
	sort.SliceStable(changes, func(i, j int) bool { return changes[i].t < changes[j].t })
	lastT := 0
	for _, ch := range changes {
		if ch.t != lastT {
			fmt.Fprintf(bw, "#%d\n", ch.t)
			lastT = ch.t
		}
		fmt.Fprintf(bw, "%s%s\n", vcdValue(ch.v), ids[ch.net])
	}
	return bw.Flush()
}

func vcdValue(v tval.V) string {
	switch v {
	case tval.Zero:
		return "0"
	case tval.One:
		return "1"
	}
	return "x"
}

// vcdID assigns printable short identifiers (! through ~, then pairs).
func vcdID(i int) string {
	const lo, hi = 33, 126
	base := hi - lo + 1
	if i < base {
		return string(rune(lo + i))
	}
	return vcdID(i/base-1) + string(rune(lo+i%base))
}

// vcdName sanitizes a signal name for VCD (no whitespace).
func vcdName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' {
			c = '_'
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}
