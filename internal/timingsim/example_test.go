package timingsim_test

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/timingsim"
	"repro/internal/tval"
)

// A rising input rippling through two inverters with delay 2 each:
// the output rises at t = 6 (input delay + two gate delays).
func ExampleSimulate() {
	b := circuit.NewBuilder("chain")
	a := b.AddInput("a")
	n1 := b.AddGate(circuit.Not, "n1", a)
	n2 := b.AddGate(circuit.Not, "n2", n1)
	b.MarkOutput(n2)
	c, _ := b.Build()

	test := circuit.TwoPattern{P1: []tval.V{tval.Zero}, P3: []tval.V{tval.One}}
	r, _ := timingsim.Simulate(c, timingsim.UniformDelays(c, 2), test)
	out := c.LineByName("n2")
	fmt.Printf("n2: initial %v, settles to %v at t=%d\n",
		r.Waveforms[out.ID][0].V, r.Waveforms[out.ID].Settled(),
		r.Waveforms[out.ID].SettleTime())
	// Output:
	// n2: initial 0, settles to 1 at t=6
}
