// Package timingsim is an event-driven gate-level timing simulator for
// two-pattern tests, used to validate the robust path delay fault
// machinery end to end.
//
// Every circuit line carries an integer delay; the delay of a path is
// the sum of its line delays, matching the length definition of the
// DATE 2002 paper. A two-pattern test is simulated as: the circuit
// rests in the steady state of the first pattern, the inputs switch to
// the second pattern at time 0, and transitions propagate under
// transport-delay semantics. Primary outputs are sampled at the clock
// period T.
//
// A path delay fault is injected by adding extra delay to the lines of
// the faulty path. The defining guarantee of a *robust* test is that
// it detects the fault — the sampled value at the path's output is
// wrong — for every delay assignment of the rest of the circuit. The
// package's tests exercise exactly that property against the tests the
// ATPG generates.
package timingsim

import (
	"container/heap"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/tval"
)

// Delays assigns an integer delay to every line (indexed by line ID).
type Delays []int

// UniformDelays returns a delay assignment giving every line the same
// delay d.
func UniformDelays(c *circuit.Circuit, d int) Delays {
	out := make(Delays, len(c.Lines))
	for i := range out {
		out[i] = d
	}
	return out
}

// PathDelay returns the total delay of a path under the assignment.
func (d Delays) PathDelay(path []int) int {
	total := 0
	for _, l := range path {
		total += d[l]
	}
	return total
}

// WithExtraOnPath returns a copy of the assignment with extra delay
// added to the last line of the path — one concrete mechanism by which
// exactly the faulty path (and every path through that line) becomes
// slow by extra.
func (d Delays) WithExtraOnPath(path []int, extra int) Delays {
	out := append(Delays(nil), d...)
	out[path[len(path)-1]] += extra
	return out
}

// WithExtraDistributed returns a copy of the assignment with the extra
// delay spread evenly over every line of the path — the distributed
// small-defect mechanism the path delay fault model was invented for
// (no single line is grossly slow, only the whole path misses timing).
// Remainders go to the earliest lines so the total added is exact.
func (d Delays) WithExtraDistributed(path []int, extra int) Delays {
	out := append(Delays(nil), d...)
	if len(path) == 0 || extra <= 0 {
		return out
	}
	per := extra / len(path)
	rem := extra % len(path)
	for i, l := range path {
		add := per
		if i < rem {
			add++
		}
		out[l] += add
	}
	return out
}

// Transition is one waveform event: the line assumes value V at time T.
type Transition struct {
	T int
	V tval.V
}

// Waveform is the transition history of a line, starting with its
// initial (first-pattern steady state) value at time 0 implicit in the
// first entry (T may be negative infinity conceptually; the first
// entry always has T = 0 meaning "initial value").
type Waveform []Transition

// At returns the line's value at time t (the value of the last
// transition not after t).
func (w Waveform) At(t int) tval.V {
	v := w[0].V
	for _, tr := range w[1:] {
		if tr.T > t {
			break
		}
		v = tr.V
	}
	return v
}

// Settled returns the final value of the waveform.
func (w Waveform) Settled() tval.V { return w[len(w)-1].V }

// SettleTime returns the time of the last transition (0 if none).
func (w Waveform) SettleTime() int { return w[len(w)-1].T }

// Result holds the simulated waveform of every line.
type Result struct {
	Waveforms []Waveform
}

// SettleTime returns the time at which the whole circuit has settled.
func (r *Result) SettleTime() int {
	max := 0
	for _, w := range r.Waveforms {
		if t := w.SettleTime(); t > max {
			max = t
		}
	}
	return max
}

type event struct {
	t    int
	seq  int
	line int
	v    tval.V
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Simulate runs the two-pattern test under the delay assignment and
// returns every line's waveform. The test must be fully specified.
func Simulate(c *circuit.Circuit, delays Delays, test circuit.TwoPattern) (*Result, error) {
	if !test.FullySpecified() {
		return nil, fmt.Errorf("timingsim: test must be fully specified")
	}
	if len(delays) != len(c.Lines) {
		return nil, fmt.Errorf("timingsim: %d delays for %d lines", len(delays), len(c.Lines))
	}

	// Steady state under pattern 1.
	cur := steadyState(c, test.P1)
	wf := make([]Waveform, len(c.Lines))
	for id := range c.Lines {
		wf[id] = Waveform{{T: 0, V: cur[id]}}
	}

	var q eventHeap
	seq := 0
	heap.Init(&q)
	for i, pi := range c.PIs {
		if test.P3[i] != cur[pi] {
			heap.Push(&q, event{t: delays[pi], seq: seq, line: pi, v: test.P3[i]})
			seq++
		}
	}

	evalGate := func(gi int) tval.V {
		g := &c.Gates[gi]
		in := make([]tval.V, len(g.In))
		for k, l := range g.In {
			in[k] = cur[l]
		}
		return g.Type.Eval(in)
	}

	guard := 0
	maxEvents := 64 * len(c.Lines) * 64
	for q.Len() > 0 {
		guard++
		if guard > maxEvents {
			return nil, fmt.Errorf("timingsim: event budget exceeded (oscillation in a combinational circuit?)")
		}
		e := heap.Pop(&q).(event)
		if cur[e.line] == e.v {
			continue
		}
		cur[e.line] = e.v
		wf[e.line] = append(wf[e.line], Transition{T: e.t, V: e.v})

		l := &c.Lines[e.line]
		// Propagate to branches (each with its own delay).
		for _, s := range l.Succs {
			sl := &c.Lines[s]
			if sl.Kind == circuit.LineBranch {
				heap.Push(&q, event{t: e.t + delays[s], seq: seq, line: s, v: e.v})
				seq++
			}
		}
		// Propagate into the consumer gate (direct connection), or —
		// when this line is a branch — into its consumer gate.
		if g := l.ConsumerGate; g >= 0 {
			out := c.Gates[g].Out
			nv := evalGate(g)
			heap.Push(&q, event{t: e.t + delays[out], seq: seq, line: out, v: nv})
			seq++
		}
	}
	return &Result{Waveforms: wf}, nil
}

// steadyState computes the stable binary value of every line under one
// pattern.
func steadyState(c *circuit.Circuit, pattern []tval.V) []tval.V {
	vals := make([]tval.V, len(c.Lines))
	net := make([]tval.V, len(c.Lines))
	for i := range net {
		net[i] = tval.X
	}
	for i, pi := range c.PIs {
		net[pi] = pattern[i]
	}
	for _, gi := range c.TopoGates() {
		g := &c.Gates[gi]
		in := make([]tval.V, len(g.In))
		for k, l := range g.In {
			in[k] = net[c.Lines[l].Net]
		}
		net[g.Out] = g.Type.Eval(in)
	}
	for id := range c.Lines {
		vals[id] = net[c.Lines[id].Net]
	}
	return vals
}

// Detected reports whether the fault injected on path is caught: the
// path's output line, sampled at period T, differs from its fault-free
// settled value.
func Detected(r *Result, path []int, period int, faultFree *Result) bool {
	sink := path[len(path)-1]
	want := faultFree.Waveforms[sink].Settled()
	got := r.Waveforms[sink].At(period)
	return got != want
}
