package verilog

import (
	"strings"
	"testing"
)

// FuzzParse checks the Verilog reader never panics and that accepted
// netlists extract (or fail extraction) cleanly.
func FuzzParse(f *testing.F) {
	f.Add(c17Verilog)
	f.Add(s27Verilog)
	f.Add("module m(a,y);\ninput a;\noutput y;\nnot N(y,a);\nendmodule\n")
	f.Add("module m(); endmodule")
	f.Add("/* */ module m(a); input a; output a; endmodule")
	f.Fuzz(func(t *testing.T, src string) {
		nl, err := Parse("fuzz", strings.NewReader(src))
		if err != nil {
			return
		}
		// Extraction may legitimately fail (cycles, dangling nets) but
		// must not panic.
		nl.Combinational()
	})
}
