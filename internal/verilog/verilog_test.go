package verilog

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

const c17Verilog = `// c17 in structural verilog
module c17 (N1,N2,N3,N6,N7,N22,N23);
input N1,N2,N3,N6,N7;
output N22,N23;
wire N10,N11,N16,N19;
/* six nand gates */
nand NAND2_1 (N10, N1, N3);
nand NAND2_2 (N11, N3, N6);
nand NAND2_3 (N16, N2, N11);
nand NAND2_4 (N19, N11, N7);
nand NAND2_5 (N22, N10, N16);
nand NAND2_6 (N23, N16, N19);
endmodule
`

const s27Verilog = `module s27(CK,G0,G1,G17,G2,G3);
input CK,G0,G1,G2,G3;
output G17;
wire G5,G6,G7,G8,G9,G10,G11,G12,G13,G14,G15,G16;
dff DFF_0(CK,G5,G10);
dff DFF_1(CK,G6,G11);
dff DFF_2(CK,G7,G13);
not NOT_0(G14,G0);
not NOT_1(G17,G11);
and AND2_0(G8,G14,G6);
or OR2_0(G15,G12,G8);
or OR2_1(G16,G3,G8);
nand NAND2_0(G9,G16,G15);
nor NOR2_0(G10,G14,G11);
nor NOR2_1(G11,G5,G9);
nor NOR2_2(G12,G1,G7);
nor NOR2_3(G13,G2,G12);
endmodule
`

func TestParseC17Verilog(t *testing.T) {
	c, err := ParseCombinational("c17", strings.NewReader(c17Verilog))
	if err != nil {
		t.Fatal(err)
	}
	// Must match the embedded .bench c17 structurally.
	want := bench.C17().Stats()
	got := c.Stats()
	if got != want {
		t.Errorf("verilog c17 stats %+v != bench c17 stats %+v", got, want)
	}
}

func TestParseS27VerilogMatchesBench(t *testing.T) {
	c, err := ParseCombinational("s27", strings.NewReader(s27Verilog))
	if err != nil {
		t.Fatal(err)
	}
	want := bench.S27().Stats()
	got := c.Stats()
	if got != want {
		t.Errorf("verilog s27 stats %+v != bench s27 stats %+v", got, want)
	}
	// The clock input must have been dropped.
	if c.LineByName("CK") != nil {
		t.Error("clock input CK leaked into the combinational circuit")
	}
	// Signals present.
	for _, n := range []string{"G0", "G5", "G17", "G13"} {
		if c.LineByName(n) == nil {
			t.Errorf("signal %s missing", n)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no module", "input a;\noutput y;\nnot N(y, a);\n"},
		{"unsupported", "module m(a,y);\ninput a;\noutput y;\nmux M(y, a, a, a);\nendmodule\n"},
		{"unterminated comment", "module m(a,y); /* oops\ninput a;\nendmodule\n"},
		{"malformed instance", "module m(a,y);\ninput a;\noutput y;\nnot N y, a;\nendmodule\n"},
		{"one port", "module m(a,y);\ninput a;\noutput y;\nnot N(y);\nendmodule\n"},
		{"dff arity", "module m(a,y);\ninput a;\noutput y;\ndff D(c1, c2, q, d);\nendmodule\n"},
		{"no outputs", "module m(a);\ninput a;\nnot N(x, a);\nendmodule\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.name, strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestTwoPortDFF(t *testing.T) {
	src := `module m(a, y);
input a;
output y;
wire q, n;
dff D(q, n);
not N(n, a);
buf B(y, q);
endmodule
`
	nl, err := Parse("m", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	c, st, err := nl.CombinationalWithState()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumFF() != 1 {
		t.Fatalf("NumFF = %d, want 1", st.NumFF())
	}
	if c.LineByName("q") == nil {
		t.Error("flip-flop output q missing")
	}
}

func TestFullFlowFromVerilog(t *testing.T) {
	// The parsed circuit must run through the whole ATPG flow.
	c, err := ParseCombinational("s27", strings.NewReader(s27Verilog))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.PIs) != 7 {
		t.Fatalf("combinational inputs = %d, want 7", len(c.PIs))
	}
}
