// Package verilog reads gate-level structural Verilog netlists of the
// kind the ISCAS/ITC benchmarks circulate in: a single module of
// primitive gate instances (and/nand/or/nor/xor/xnor/not/buf) plus dff
// instances for sequential circuits. The result is a bench.Netlist, so
// the rest of the flow (combinational extraction, ATPG, simulation) is
// shared with the .bench reader.
//
// Supported shape:
//
//	// comments and /* block comments */
//	module c17 (N1,N2,N3,N6,N7,N22,N23);
//	input N1,N2,N3,N6,N7;
//	output N22,N23;
//	wire N10,N11;
//	nand NAND2_1 (N10, N1, N3);
//	dff DFF_0 (CK, G5, G10);   // (clock, Q, D) — or (Q, D)
//	endmodule
//
// The first port of a gate instance is its output. Clock inputs that
// feed only dff clock pins are dropped during conversion.
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/bench"
	"repro/internal/circuit"
)

// Parse reads one structural Verilog module into a bench.Netlist.
func Parse(name string, r io.Reader) (*bench.Netlist, error) {
	stmts, err := statements(r)
	if err != nil {
		return nil, fmt.Errorf("verilog: %s: %v", name, err)
	}
	nl := &bench.Netlist{Name: name}
	clockCandidates := map[string]bool{}
	usedAsData := map[string]bool{}
	sawModule := false

	for _, st := range stmts {
		fields := strings.Fields(st)
		if len(fields) == 0 {
			continue
		}
		keyword := strings.ToLower(fields[0])
		switch keyword {
		case "module":
			sawModule = true
			// Port list ignored; input/output declarations carry the
			// direction information.
		case "endmodule":
			// done
		case "input":
			for _, n := range declNames(st) {
				nl.Inputs = append(nl.Inputs, n)
			}
		case "output":
			for _, n := range declNames(st) {
				nl.Outputs = append(nl.Outputs, n)
			}
		case "wire", "reg":
			// internal nets carry no information we need
		case "and", "nand", "or", "nor", "xor", "xnor", "not", "buf", "buff", "dff":
			out, ins, err := instancePorts(st)
			if err != nil {
				return nil, fmt.Errorf("verilog: %s: %v", name, err)
			}
			if keyword == "dff" {
				// (clock, Q, D) or (Q, D): the output named by the
				// first data port, D is the last port.
				switch len(ins) {
				case 1:
					// out = Q already, ins[0] = D
				case 2:
					// out = clock; shift.
					clockCandidates[out] = true
					out, ins = ins[0], ins[1:]
				default:
					return nil, fmt.Errorf("verilog: %s: dff %q must have 2 or 3 ports", name, st)
				}
				nl.Gates = append(nl.Gates, bench.NetlistGate{Out: out, Type: "DFF", In: ins})
				usedAsData[ins[0]] = true
				continue
			}
			gt := strings.ToUpper(keyword)
			if gt == "BUFF" {
				gt = "BUF"
			}
			nl.Gates = append(nl.Gates, bench.NetlistGate{Out: out, Type: gt, In: ins})
			for _, in := range ins {
				usedAsData[in] = true
			}
		default:
			return nil, fmt.Errorf("verilog: %s: unsupported statement %q", name, st)
		}
	}
	if !sawModule {
		return nil, fmt.Errorf("verilog: %s: no module declaration", name)
	}
	// Drop pure clock inputs: inputs never used as gate/dff data.
	outputs := map[string]bool{}
	for _, o := range nl.Outputs {
		outputs[o] = true
	}
	kept := nl.Inputs[:0]
	for _, in := range nl.Inputs {
		switch {
		case usedAsData[in] || outputs[in]:
			kept = append(kept, in)
		case clockCandidates[in] || isClockName(in):
			// pure clock: dropped
		default:
			// Unused non-clock input: keep it so the circuit builder
			// reports the dangling net instead of silently losing it.
			kept = append(kept, in)
		}
	}
	nl.Inputs = kept
	if len(nl.Inputs) == 0 {
		return nil, fmt.Errorf("verilog: %s: no usable inputs", name)
	}
	if len(nl.Outputs) == 0 {
		return nil, fmt.Errorf("verilog: %s: no outputs", name)
	}
	return nl, nil
}

// ParseCombinational parses and extracts the combinational logic.
func ParseCombinational(name string, r io.Reader) (*circuit.Circuit, error) {
	nl, err := Parse(name, r)
	if err != nil {
		return nil, err
	}
	return nl.Combinational()
}

// statements splits the source into semicolon-terminated statements
// with comments removed.
func statements(r io.Reader) ([]string, error) {
	br := bufio.NewReader(r)
	raw, err := io.ReadAll(br)
	if err != nil {
		return nil, err
	}
	src := string(raw)
	// Strip block comments.
	for {
		i := strings.Index(src, "/*")
		if i < 0 {
			break
		}
		j := strings.Index(src[i:], "*/")
		if j < 0 {
			return nil, fmt.Errorf("unterminated block comment")
		}
		src = src[:i] + " " + src[i+j+2:]
	}
	// Strip line comments.
	var sb strings.Builder
	for _, line := range strings.Split(src, "\n") {
		if k := strings.Index(line, "//"); k >= 0 {
			line = line[:k]
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	src = sb.String()
	// endmodule has no semicolon; normalize.
	src = strings.ReplaceAll(src, "endmodule", "endmodule;")
	var out []string
	for _, st := range strings.Split(src, ";") {
		st = strings.TrimSpace(st)
		if st != "" {
			out = append(out, st)
		}
	}
	return out, nil
}

// declNames extracts the identifiers of an input/output/wire
// declaration.
func declNames(st string) []string {
	fields := strings.Fields(st)
	rest := strings.Join(fields[1:], " ")
	var out []string
	for _, n := range strings.Split(rest, ",") {
		n = strings.TrimSpace(n)
		if n != "" {
			out = append(out, n)
		}
	}
	return out
}

// instancePorts parses "gate NAME (out, in, ...)" and returns the
// output and input nets.
func instancePorts(st string) (string, []string, error) {
	open := strings.Index(st, "(")
	close_ := strings.LastIndex(st, ")")
	if open < 0 || close_ < open {
		return "", nil, fmt.Errorf("malformed instance %q", st)
	}
	var ports []string
	for _, p := range strings.Split(st[open+1:close_], ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			return "", nil, fmt.Errorf("empty port in %q", st)
		}
		ports = append(ports, p)
	}
	if len(ports) < 2 {
		return "", nil, fmt.Errorf("instance %q needs at least 2 ports", st)
	}
	return ports[0], ports[1:], nil
}

func isClockName(n string) bool {
	l := strings.ToLower(n)
	return l == "ck" || l == "clk" || l == "clock" || l == "cp"
}
