// Package experiments regenerates every table of the DATE 2002 paper's
// evaluation on the benchmark stand-in circuits (see DESIGN.md for the
// substitution rationale):
//
//	Table 1 — the budgeted path enumeration walk-through on s27;
//	Table 2 — the path length profile N_p(L_i) of s1423;
//	Table 3 — P0 faults detected by the basic procedure, 4 heuristics;
//	Table 4 — test counts of the basic procedure, 4 heuristics;
//	Table 5 — P0∪P1 faults accidentally detected by the basic test sets;
//	Table 6 — the enrichment procedure with P0 and P1;
//	Table 7 — run time ratio enrichment / basic (value-based).
//
// Absolute values differ from the paper (synthetic stand-in circuits,
// scaled budgets); the shapes the paper argues from are asserted in
// EXPERIMENTS.md and the test suite.
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/bitsim"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/faultsim"
	"repro/internal/obs"
	"repro/internal/pathenum"
	"repro/internal/robust"
	"repro/internal/synth"
)

// Params scales the experiment suite. The paper uses NP=10000 and
// NP0=1000; the defaults are scaled to the stand-in circuits so the
// full suite runs in minutes.
type Params struct {
	NP   int   // N_P: fault budget for path enumeration
	NP0  int   // N_P0: minimum size of the first target set
	Seed int64 // randomization seed for all procedures
}

// DefaultParams returns the scaled defaults.
func DefaultParams() Params {
	return Params{NP: 2000, NP0: 300, Seed: 1}
}

// PaperParams returns the paper's parameters (slow on the full suite).
func PaperParams() Params {
	return Params{NP: 10000, NP0: 1000, Seed: 1}
}

// CircuitData is the prepared input of the generation experiments: the
// circuit, the screened fault sets and the partition index.
type CircuitData struct {
	Name       string
	Circuit    *circuit.Circuit
	I0         int
	P0, P1     []robust.FaultConditions
	Eliminated int // undetectable faults removed from P
	Enumerated int // faults enumerated into P
}

// All returns P0 followed by P1.
func (d *CircuitData) All() []robust.FaultConditions {
	all := make([]robust.FaultConditions, 0, len(d.P0)+len(d.P1))
	all = append(all, d.P0...)
	return append(all, d.P1...)
}

// LoadCircuit returns the named circuit: "s27" and "c17" are the
// embedded benchmark netlists, every other name is a synthetic
// stand-in profile.
func LoadCircuit(name string) (*circuit.Circuit, error) {
	switch name {
	case "s27":
		return bench.S27(), nil
	case "c17":
		return bench.C17(), nil
	}
	return synth.Benchmark(name)
}

// Prepare enumerates, screens and partitions the faults of a circuit.
func Prepare(name string, p Params) (*CircuitData, error) {
	c, err := LoadCircuit(name)
	if err != nil {
		return nil, err
	}
	return PrepareCircuit(c, p)
}

// PrepareCircuit is Prepare for an already-built circuit.
func PrepareCircuit(c *circuit.Circuit, p Params) (*CircuitData, error) {
	return PrepareCircuitCtx(context.Background(), c, p)
}

// PrepareCircuitCtx is PrepareCircuit with an observability context:
// when ctx carries an obs.Trace (the engine's per-job timeline), the
// three preparation stages — path enumeration, robustness screening,
// and the P0/P1 partition — are recorded as child spans. With a plain
// context the spans are free no-ops.
func PrepareCircuitCtx(ctx context.Context, c *circuit.Circuit, p Params) (*CircuitData, error) {
	_, espan := obs.StartSpan(ctx, "pathenum", obs.Int("budget", p.NP))
	res, err := pathenum.Enumerate(c, pathenum.Config{
		MaxFaults: p.NP,
		Mode:      pathenum.DistancePruned,
	})
	if err != nil {
		espan.End()
		return nil, fmt.Errorf("experiments: %s: %v", c.Name, err)
	}
	espan.End(obs.Int("enumerated", len(res.Faults)))

	_, sspan := obs.StartSpan(ctx, "screen", obs.Int("faults", len(res.Faults)))
	kept, eliminated := robust.Screen(c, res.Faults)
	sspan.End(obs.Int("kept", len(kept)), obs.Int("eliminated", eliminated))

	_, pspan := obs.StartSpan(ctx, "partition", obs.Int("np0", p.NP0))
	raw := make([]faults.Fault, len(kept))
	for i := range kept {
		raw[i] = kept[i].Fault
	}
	// Partition preserves order (kept is sorted by decreasing length),
	// so P0 is a prefix of kept.
	p0f, _, i0 := faults.Partition(raw, p.NP0)
	d := &CircuitData{
		Name:       c.Name,
		Circuit:    c,
		I0:         i0,
		P0:         kept[:len(p0f)],
		P1:         kept[len(p0f):],
		Eliminated: eliminated,
		Enumerated: len(res.Faults),
	}
	pspan.End(obs.Int("p0", len(d.P0)), obs.Int("p1", len(d.P1)))
	return d, nil
}

// Table1Result summarizes the budgeted moderate enumeration of s27
// (the walk-through of Table 1).
type Table1Result struct {
	FinalPaths      int
	MinLen, MaxLen  int
	EvictedComplete int
	BudgetHits      int
	Paths           []string // formatted final paths
}

// Table1 reruns the paper's s27 walk-through: moderate enumeration
// with a budget of 20 paths (40 faults).
func Table1() (*Table1Result, error) {
	c := bench.S27()
	res, err := pathenum.Enumerate(c, pathenum.Config{MaxFaults: 40, Mode: pathenum.Moderate})
	if err != nil {
		return nil, err
	}
	out := &Table1Result{
		FinalPaths:      len(res.Faults) / 2,
		MinLen:          1 << 30,
		EvictedComplete: res.Stats.EvictedComplete,
		BudgetHits:      res.Stats.BudgetHits,
	}
	seen := map[string]bool{}
	for i := range res.Faults {
		f := &res.Faults[i]
		if f.Length < out.MinLen {
			out.MinLen = f.Length
		}
		if f.Length > out.MaxLen {
			out.MaxLen = f.Length
		}
		s := c.PathString(f.Path)
		if !seen[s] {
			seen[s] = true
			out.Paths = append(out.Paths, s)
		}
	}
	return out, nil
}

// Table2 returns the top-k rows of the length profile of a circuit's
// enumerated fault set: i, L_i and N_p(L_i), as in Table 2.
func Table2(name string, p Params, topK int) ([]faults.LengthCount, error) {
	c, err := LoadCircuit(name)
	if err != nil {
		return nil, err
	}
	res, err := pathenum.Enumerate(c, pathenum.Config{
		MaxFaults: p.NP,
		Mode:      pathenum.DistancePruned,
	})
	if err != nil {
		return nil, err
	}
	prof := faults.Profile(res.Faults)
	if topK > 0 && len(prof) > topK {
		prof = prof[:topK]
	}
	return prof, nil
}

// BasicRow is one circuit's row of Tables 3, 4 and 5: the basic
// procedure under each of the four heuristics.
type BasicRow struct {
	Circuit  string
	I0       int
	P0Faults int
	// Indexed by core.Heuristic.
	Detected     [4]int
	Tests        [4]int
	P0P1Faults   int
	P0P1Detected [4]int
	Elapsed      [4]time.Duration
}

// BasicTable runs the basic procedure with all four heuristics on a
// prepared circuit, producing the circuit's rows of Tables 3-5.
func BasicTable(d *CircuitData, p Params) *BasicRow {
	row := &BasicRow{
		Circuit:    d.Name,
		I0:         d.I0,
		P0Faults:   len(d.P0),
		P0P1Faults: len(d.P0) + len(d.P1),
	}
	all := d.All()
	for _, h := range core.Heuristics {
		res := core.Generate(d.Circuit, d.P0, core.Config{Heuristic: h, Seed: p.Seed})
		row.Detected[h] = res.DetectedCount
		row.Tests[h] = len(res.Tests)
		row.Elapsed[h] = res.Elapsed
		// Table 5: simulate P0 ∪ P1 under this test set with the
		// word-parallel simulator (bit-identical to the scalar one).
		n, err := bitsim.Count(d.Circuit, res.Tests, all)
		if err != nil {
			// Impossible for fully specified generated tests; fall
			// back to the scalar simulator defensively.
			n = faultsim.Count(d.Circuit, res.Tests, all)
		}
		row.P0P1Detected[h] = n
	}
	return row
}

// EnrichRow is one circuit's row of Table 6 plus the Table 7 ratio.
type EnrichRow struct {
	Circuit     string
	I0          int
	P0Total     int
	P0Detected  int
	AllTotal    int
	AllDetected int
	Tests       int
	Elapsed     time.Duration
	// BasicElapsed is the value-based basic run used for the Table 7
	// ratio; Ratio is Elapsed / BasicElapsed.
	BasicElapsed time.Duration
	Ratio        float64
}

// EnrichTable runs the enrichment procedure on a prepared circuit and
// the value-based basic procedure for the Table 7 run time ratio.
func EnrichTable(d *CircuitData, p Params) *EnrichRow {
	basic := core.Generate(d.Circuit, d.P0, core.Config{Heuristic: core.ValueBased, Seed: p.Seed})
	er := core.Enrich(d.Circuit, d.P0, d.P1, core.Config{Seed: p.Seed})
	row := &EnrichRow{
		Circuit:      d.Name,
		I0:           d.I0,
		P0Total:      len(d.P0),
		P0Detected:   er.DetectedP0Count,
		AllTotal:     len(d.P0) + len(d.P1),
		AllDetected:  er.DetectedP0Count + er.DetectedP1Count,
		Tests:        len(er.Tests),
		Elapsed:      er.Elapsed,
		BasicElapsed: basic.Elapsed,
	}
	if basic.Elapsed > 0 {
		row.Ratio = float64(er.Elapsed) / float64(basic.Elapsed)
	}
	return row
}

// Suite runs the full table suite over the standard circuit lists and
// returns the rows. Circuits that fail to prepare are reported in
// errs but do not abort the suite.
type Suite struct {
	Params Params
	Basic  []*BasicRow  // Tables 3, 4, 5 (PaperOrder circuits)
	Enrich []*EnrichRow // Tables 6, 7 (PaperOrderEnrichment circuits)
	Errs   []error
}

// RunSuite executes the whole evaluation over the paper's circuit
// lists.
func RunSuite(p Params) *Suite {
	return RunSuiteCircuits(p, synth.PaperOrder, synth.PaperOrderEnrichment)
}

// RunSuiteCircuits executes the evaluation over explicit circuit
// lists: basicNames feed Tables 3-5, enrichNames Tables 6-7.
func RunSuiteCircuits(p Params, basicNames, enrichNames []string) *Suite {
	s := &Suite{Params: p}
	prepared := make(map[string]*CircuitData)
	prepare := func(name string) *CircuitData {
		if d, ok := prepared[name]; ok {
			return d
		}
		d, err := Prepare(name, p)
		if err != nil {
			s.Errs = append(s.Errs, err)
			prepared[name] = nil
			return nil
		}
		prepared[name] = d
		return d
	}
	for _, name := range basicNames {
		if d := prepare(name); d != nil {
			s.Basic = append(s.Basic, BasicTable(d, p))
		}
	}
	for _, name := range enrichNames {
		if d := prepare(name); d != nil {
			s.Enrich = append(s.Enrich, EnrichTable(d, p))
		}
	}
	return s
}
