package experiments

import (
	"encoding/csv"
	"io"
	"strconv"
)

// WriteBasicCSV emits the Tables 3-5 data as CSV (one row per circuit,
// all heuristics in columns) for external plotting.
func WriteBasicCSV(w io.Writer, rows []*BasicRow) error {
	cw := csv.NewWriter(w)
	header := []string{
		"circuit", "i0", "p0_faults",
		"detected_uncomp", "detected_arbit", "detected_length", "detected_values",
		"tests_uncomp", "tests_arbit", "tests_length", "tests_values",
		"p0p1_faults",
		"p0p1_detected_uncomp", "p0p1_detected_arbit", "p0p1_detected_length", "p0p1_detected_values",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Circuit, itoa(r.I0), itoa(r.P0Faults)}
		for _, v := range r.Detected {
			rec = append(rec, itoa(v))
		}
		for _, v := range r.Tests {
			rec = append(rec, itoa(v))
		}
		rec = append(rec, itoa(r.P0P1Faults))
		for _, v := range r.P0P1Detected {
			rec = append(rec, itoa(v))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteEnrichCSV emits the Tables 6-7 data as CSV.
func WriteEnrichCSV(w io.Writer, rows []*EnrichRow) error {
	cw := csv.NewWriter(w)
	header := []string{
		"circuit", "i0", "p0_total", "p0_detected",
		"p0p1_total", "p0p1_detected", "tests", "rt_ratio",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Circuit, itoa(r.I0), itoa(r.P0Total), itoa(r.P0Detected),
			itoa(r.AllTotal), itoa(r.AllDetected), itoa(r.Tests),
			strconv.FormatFloat(r.Ratio, 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func itoa(v int) string { return strconv.Itoa(v) }
