package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleBasicRows() []*BasicRow {
	return []*BasicRow{{
		Circuit:      "toy",
		I0:           3,
		P0Faults:     100,
		Detected:     [4]int{90, 91, 92, 93},
		Tests:        [4]int{50, 20, 19, 18},
		P0P1Faults:   200,
		P0P1Detected: [4]int{120, 118, 119, 121},
		Elapsed:      [4]time.Duration{time.Second, time.Second, time.Second, time.Second},
	}}
}

func sampleEnrichRows() []*EnrichRow {
	return []*EnrichRow{{
		Circuit: "toy", I0: 3,
		P0Total: 100, P0Detected: 93,
		AllTotal: 200, AllDetected: 170,
		Tests: 19, Ratio: 1.25,
	}}
}

func TestRenderTables3Through7(t *testing.T) {
	var buf bytes.Buffer
	RenderTable3(&buf, sampleBasicRows())
	RenderTable4(&buf, sampleBasicRows())
	RenderTable5(&buf, sampleBasicRows())
	RenderTable6(&buf, sampleEnrichRows())
	RenderTable7(&buf, sampleEnrichRows())
	out := buf.String()
	for _, want := range []string{
		"Table 3", "Table 4", "Table 5", "Table 6", "Table 7",
		"toy", "uncomp", "arbit", "length", "values", "1.25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q", want)
		}
	}
	// The enrichment table must carry the detected counts.
	if !strings.Contains(out, "170") || !strings.Contains(out, "93") {
		t.Error("Table 6 numbers missing")
	}
}

func TestRunSuiteCircuitsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := Params{NP: 300, NP0: 60, Seed: 1}
	s := RunSuiteCircuits(p, []string{"b09"}, []string{"b09", "definitely-missing"})
	if len(s.Basic) != 1 {
		t.Fatalf("basic rows = %d, want 1", len(s.Basic))
	}
	if len(s.Enrich) != 1 {
		t.Fatalf("enrich rows = %d, want 1", len(s.Enrich))
	}
	if len(s.Errs) != 1 {
		t.Fatalf("errors = %d, want 1 (the missing circuit)", len(s.Errs))
	}
	var buf bytes.Buffer
	RenderSuite(&buf, s)
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "Table 6", "error:"} {
		if !strings.Contains(out, want) {
			t.Errorf("suite rendering missing %q", want)
		}
	}
}

func TestPaperParams(t *testing.T) {
	p := PaperParams()
	if p.NP != 10000 || p.NP0 != 1000 {
		t.Errorf("paper params wrong: %+v", p)
	}
}
