package experiments

import (
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/robust"
)

// SweepRow is one point of the N_P0 sensitivity sweep: how the
// enrichment procedure behaves as the size of the first target set
// grows. The paper's knob: "the sizes of P0 and P1 can be adjusted to
// control the test generation effort".
type SweepRow struct {
	NP0         int
	P0Size      int
	P1Size      int
	Tests       int
	P0Detected  int
	AllDetected int
	Elapsed     time.Duration
}

// SweepNP0 repartitions a screened fault population at each N_P0 value
// and runs the enrichment procedure, returning one row per point.
func SweepNP0(c *circuit.Circuit, kept []robust.FaultConditions, np0s []int, seed int64) []SweepRow {
	raw := make([]faults.Fault, len(kept))
	for i := range kept {
		raw[i] = kept[i].Fault
	}
	rows := make([]SweepRow, 0, len(np0s))
	for _, np0 := range np0s {
		p0f, _, _ := faults.Partition(raw, np0)
		p0 := kept[:len(p0f)]
		p1 := kept[len(p0f):]
		er := core.Enrich(c, p0, p1, core.Config{Seed: seed})
		rows = append(rows, SweepRow{
			NP0:         np0,
			P0Size:      len(p0),
			P1Size:      len(p1),
			Tests:       len(er.Tests),
			P0Detected:  er.DetectedP0Count,
			AllDetected: er.DetectedP0Count + er.DetectedP1Count,
			Elapsed:     er.Elapsed,
		})
	}
	return rows
}
