package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTable1(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalPaths >= 20 {
		t.Errorf("final paths %d must stay under the 20-path budget", r.FinalPaths)
	}
	if r.MaxLen != 10 {
		t.Errorf("max length = %d, want 10", r.MaxLen)
	}
	if r.EvictedComplete == 0 || r.BudgetHits == 0 {
		t.Error("walk-through must hit the budget and evict short paths")
	}
	var buf bytes.Buffer
	RenderTable1(&buf, r)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("render output malformed")
	}
}

func TestTable2S1423StandIn(t *testing.T) {
	p := DefaultParams()
	prof, err := Table2("s1423", p, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) == 0 {
		t.Fatal("empty profile")
	}
	// Paper Table 2 invariants: lengths strictly decreasing with i,
	// cumulative strictly increasing, first cumulative small.
	for i := 1; i < len(prof); i++ {
		if prof[i].L >= prof[i-1].L {
			t.Error("lengths must strictly decrease")
		}
		if prof[i].Cumulative <= prof[i-1].Cumulative {
			t.Error("cumulative counts must strictly increase")
		}
	}
	if prof[0].Cumulative > prof[len(prof)-1].Cumulative/2 {
		t.Logf("note: longest length class holds %d of %d faults",
			prof[0].Cumulative, prof[len(prof)-1].Cumulative)
	}
	var buf bytes.Buffer
	RenderTable2(&buf, "s1423", prof)
	if !strings.Contains(buf.String(), "N_p(L_i)") {
		t.Error("render output malformed")
	}
}

func TestPrepareS27(t *testing.T) {
	p := Params{NP: 0, NP0: 10, Seed: 1}
	d, err := Prepare("s27", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.P0) < 10 {
		t.Errorf("|P0| = %d, want ≥ 10", len(d.P0))
	}
	if len(d.P0)+len(d.P1)+d.Eliminated != d.Enumerated {
		t.Errorf("fault accounting broken: %d + %d + %d != %d",
			len(d.P0), len(d.P1), d.Eliminated, d.Enumerated)
	}
	// P0 is the long prefix: lengths in P0 ≥ lengths in P1.
	if len(d.P1) > 0 {
		minP0 := d.P0[len(d.P0)-1].Fault.Length
		for i := range d.P1 {
			if d.P1[i].Fault.Length >= minP0 {
				t.Fatal("partition order broken")
			}
		}
	}
}

func TestLoadCircuitUnknown(t *testing.T) {
	if _, err := LoadCircuit("nonesuch"); err == nil {
		t.Error("unknown circuit must fail")
	}
}

func TestBasicAndEnrichRowsOnSmallCircuit(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := DefaultParams()
	d, err := Prepare("b09", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.P1) < 30 {
		t.Fatalf("b09 stand-in has degenerate P1 (%d faults); retune profile or budget", len(d.P1))
	}
	row := BasicTable(d, p)
	t.Logf("b09 basic: P0=%d detected=%v tests=%v elapsed=%v",
		row.P0Faults, row.Detected, row.Tests, row.Elapsed)

	// Table 3/4 shapes: compaction heuristics detect about as many
	// faults as uncompacted with clearly fewer tests.
	for _, h := range []int{1, 2, 3} {
		if row.Tests[h] >= row.Tests[0] {
			t.Errorf("heuristic %d: %d tests, uncompacted %d — no compaction",
				h, row.Tests[h], row.Tests[0])
		}
	}
	er := EnrichTable(d, p)
	t.Logf("b09 enrich: P0 %d/%d, all %d/%d, tests=%d, ratio=%.2f",
		er.P0Detected, er.P0Total, er.AllDetected, er.AllTotal, er.Tests, er.Ratio)

	// Table 6 shape: enrichment detects more of P0∪P1 than any basic
	// run's accidental detection.
	for h := 0; h < 4; h++ {
		if er.AllDetected <= row.P0P1Detected[h] {
			t.Errorf("enrichment %d ≤ basic heuristic %d accidental %d",
				er.AllDetected, h, row.P0P1Detected[h])
		}
	}
	// Test count close to the value-based basic run.
	if er.Tests > row.Tests[3]+row.Tests[3]/4+2 {
		t.Errorf("enrichment tests %d much larger than basic values %d",
			er.Tests, row.Tests[3])
	}
}
