package experiments

import "testing"

func TestSweepNP0(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := Params{NP: 1000, NP0: 50, Seed: 1}
	d, err := Prepare("b09", p)
	if err != nil {
		t.Fatal(err)
	}
	kept := d.All()
	rows := SweepNP0(d.Circuit, kept, []int{20, 80, 200}, 1)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for i, r := range rows {
		if r.P0Size+r.P1Size != len(kept) {
			t.Errorf("row %d loses faults: %d + %d != %d", i, r.P0Size, r.P1Size, len(kept))
		}
		if r.P0Detected > r.P0Size || r.AllDetected > len(kept) {
			t.Errorf("row %d inconsistent detection: %+v", i, r)
		}
		if i > 0 && r.P0Size < rows[i-1].P0Size {
			t.Error("P0 must grow with N_P0")
		}
	}
	// Growing P0 means more mandatory targets: the test count must not
	// shrink dramatically (it is determined by P0).
	if rows[2].Tests < rows[0].Tests/2 {
		t.Errorf("test counts inverted: %v", rows)
	}
	t.Logf("sweep: %+v", rows)
}
