package experiments

import (
	"fmt"
	"io"

	"repro/internal/faults"
)

// RenderTable1 prints the Table 1 summary.
func RenderTable1(w io.Writer, r *Table1Result) {
	fmt.Fprintln(w, "Table 1: budgeted moderate enumeration of s27 (N_P = 20 paths)")
	fmt.Fprintf(w, "  final paths: %d, lengths %d..%d, complete paths evicted: %d, budget hits: %d\n",
		r.FinalPaths, r.MinLen, r.MaxLen, r.EvictedComplete, r.BudgetHits)
	for _, p := range r.Paths {
		fmt.Fprintf(w, "  %s\n", p)
	}
}

// RenderTable2 prints the length profile in the paper's three columns.
func RenderTable2(w io.Writer, name string, prof []faults.LengthCount) {
	fmt.Fprintf(w, "Table 2: numbers of faults in %s\n", name)
	fmt.Fprintf(w, "%4s %6s %10s\n", "i", "L_i", "N_p(L_i)")
	for i, row := range prof {
		fmt.Fprintf(w, "%4d %6d %10d\n", i, row.L, row.Cumulative)
	}
}

// RenderTable3 prints P0 detection counts per heuristic.
func RenderTable3(w io.Writer, rows []*BasicRow) {
	fmt.Fprintln(w, "Table 3: basic test generation using P0 (detected faults)")
	fmt.Fprintf(w, "%-8s %4s %8s %8s %8s %8s %8s\n",
		"circuit", "i0", "P0 flts", "uncomp", "arbit", "length", "values")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %4d %8d %8d %8d %8d %8d\n",
			r.Circuit, r.I0, r.P0Faults,
			r.Detected[0], r.Detected[1], r.Detected[2], r.Detected[3])
	}
}

// RenderTable4 prints test counts per heuristic.
func RenderTable4(w io.Writer, rows []*BasicRow) {
	fmt.Fprintln(w, "Table 4: basic test generation using P0 (numbers of tests)")
	fmt.Fprintf(w, "%-8s %4s %8s %8s %8s %8s\n",
		"circuit", "i0", "uncomp", "arbit", "length", "values")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %4d %8d %8d %8d %8d\n",
			r.Circuit, r.I0,
			r.Tests[0], r.Tests[1], r.Tests[2], r.Tests[3])
	}
}

// RenderTable5 prints the accidental P0∪P1 detection of the basic test
// sets.
func RenderTable5(w io.Writer, rows []*BasicRow) {
	fmt.Fprintln(w, "Table 5: simulation of P0 ∪ P1 under the basic test sets")
	fmt.Fprintf(w, "%-8s %4s %10s %8s %8s %8s %8s\n",
		"circuit", "i0", "P0P1 flts", "uncomp", "arbit", "length", "values")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %4d %10d %8d %8d %8d %8d\n",
			r.Circuit, r.I0, r.P0P1Faults,
			r.P0P1Detected[0], r.P0P1Detected[1], r.P0P1Detected[2], r.P0P1Detected[3])
	}
}

// RenderTable6 prints the enrichment results.
func RenderTable6(w io.Writer, rows []*EnrichRow) {
	fmt.Fprintln(w, "Table 6: results of test enrichment using P0 and P1")
	fmt.Fprintf(w, "%-8s %4s %9s %9s %10s %10s %7s\n",
		"circuit", "i0", "P0 total", "P0 det", "P0P1 tot", "P0P1 det", "tests")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %4d %9d %9d %10d %10d %7d\n",
			r.Circuit, r.I0, r.P0Total, r.P0Detected,
			r.AllTotal, r.AllDetected, r.Tests)
	}
}

// RenderTable7 prints the run time ratios.
func RenderTable7(w io.Writer, rows []*EnrichRow) {
	fmt.Fprintln(w, "Table 7: run time ratios (enrichment / basic value-based)")
	fmt.Fprintf(w, "%-8s %4s %7s\n", "circuit", "i0", "ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %4d %7.2f\n", r.Circuit, r.I0, r.Ratio)
	}
}

// RenderSuite prints every table of a completed suite.
func RenderSuite(w io.Writer, s *Suite) {
	if t1, err := Table1(); err == nil {
		RenderTable1(w, t1)
		fmt.Fprintln(w)
	}
	if prof, err := Table2("s1423", s.Params, 20); err == nil {
		RenderTable2(w, "s1423 (stand-in)", prof)
		fmt.Fprintln(w)
	}
	RenderTable3(w, s.Basic)
	fmt.Fprintln(w)
	RenderTable4(w, s.Basic)
	fmt.Fprintln(w)
	RenderTable5(w, s.Basic)
	fmt.Fprintln(w)
	RenderTable6(w, s.Enrich)
	fmt.Fprintln(w)
	RenderTable7(w, s.Enrich)
	for _, err := range s.Errs {
		fmt.Fprintf(w, "error: %v\n", err)
	}
}
