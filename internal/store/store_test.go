package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func mustOpen(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func testKey(i int) string {
	h := fmt.Sprintf("%016x", i)
	return h + "/" + h + "/" + h
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	key := testKey(1)
	payload := []byte(`{"tests":["01x","10x"]}`)
	if err := s.Put(key, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatalf("Get: miss after Put")
	}
	if string(got) != string(payload) {
		t.Fatalf("Get: payload mismatch: %q != %q", got, payload)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if s.Bytes() != int64(len(payload)) {
		t.Fatalf("Bytes = %d, want %d", s.Bytes(), len(payload))
	}

	// A second Open over the same directory sees the entry: the
	// durable path survives process death.
	s2 := mustOpen(t, Config{Dir: dir})
	got, ok = s2.Get(key)
	if !ok || string(got) != string(payload) {
		t.Fatalf("reopened Get = %q, %v; want %q, true", got, ok, payload)
	}
	m := s2.MetricsRef()
	if m.Hits.Load() != 1 || m.Misses.Load() != 0 {
		t.Fatalf("metrics hits=%d misses=%d, want 1/0", m.Hits.Load(), m.Misses.Load())
	}
}

func TestStoreMissAndOverwrite(t *testing.T) {
	s := mustOpen(t, Config{})
	if _, ok := s.Get(testKey(9)); ok {
		t.Fatal("Get on empty store should miss")
	}
	key := testKey(2)
	if err := s.Put(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, []byte("longer-v2")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || string(got) != "longer-v2" {
		t.Fatalf("Get after overwrite = %q, %v", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len after overwrite = %d, want 1", s.Len())
	}
	if s.Bytes() != int64(len("longer-v2")) {
		t.Fatalf("Bytes after overwrite = %d", s.Bytes())
	}
}

func TestStoreInvalidKeys(t *testing.T) {
	s := mustOpen(t, Config{})
	for _, key := range []string{"", "UPPER", "../../etc/passwd", "a b", "abc\x00"} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted an invalid key", key)
		}
		if _, ok := s.Get(key); ok {
			t.Fatalf("Get(%q) hit on an invalid key", key)
		}
	}
}

func TestStoreEvictionByEntries(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir(), MaxEntries: 3})
	for i := 0; i < 5; i++ {
		if err := s.Put(testKey(i), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	// Oldest two evicted, newest three retained.
	for i := 0; i < 2; i++ {
		if _, ok := s.Get(testKey(i)); ok {
			t.Fatalf("key %d should have been evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := s.Get(testKey(i)); !ok {
			t.Fatalf("key %d should have survived", i)
		}
	}
	if got := s.MetricsRef().Evictions.Load(); got != 2 {
		t.Fatalf("evictions = %d, want 2", got)
	}
}

func TestStoreEvictionByBytesRespectsLRU(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir(), MaxEntries: -1, MaxBytes: 30})
	for i := 0; i < 3; i++ {
		if err := s.Put(testKey(i), []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 0 so key 1 is now least recently used.
	if _, ok := s.Get(testKey(0)); !ok {
		t.Fatal("key 0 missing")
	}
	if err := s.Put(testKey(3), []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(testKey(1)); ok {
		t.Fatal("key 1 (LRU) should have been evicted")
	}
	if _, ok := s.Get(testKey(0)); !ok {
		t.Fatal("recently used key 0 should have survived")
	}
	if s.Bytes() > 30 {
		t.Fatalf("Bytes = %d, want <= 30", s.Bytes())
	}
}

func TestStoreReopenPreservesRecency(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	for i := 0; i < 4; i++ {
		if err := s.Put(testKey(i), []byte("p")); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so the reopen scan recovers the order even
		// on coarse-granularity filesystems.
		ts := time.Unix(1_700_000_000+int64(i), 0)
		if err := os.Chtimes(filepath.Join(dir, fileFromKey(testKey(i))), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	s2 := mustOpen(t, Config{Dir: dir, MaxEntries: 2})
	if s2.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after bounded reopen", s2.Len())
	}
	// The newest two (by mtime) survive the reopen eviction.
	for i := 0; i < 2; i++ {
		if _, ok := s2.Get(testKey(i)); ok {
			t.Fatalf("old key %d survived bounded reopen", i)
		}
	}
	for i := 2; i < 4; i++ {
		if _, ok := s2.Get(testKey(i)); !ok {
			t.Fatalf("new key %d evicted on bounded reopen", i)
		}
	}
}

func TestStoreTmpFilesSweptAtOpen(t *testing.T) {
	dir := t.TempDir()
	leftover := filepath.Join(dir, fileFromKey(testKey(7))+tmpSuffix)
	if err := os.WriteFile(leftover, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, Config{Dir: dir})
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if _, err := os.Stat(leftover); !os.IsNotExist(err) {
		t.Fatalf("leftover tmp file not swept: %v", err)
	}
}

func TestStoreClosed(t *testing.T) {
	s := mustOpen(t, Config{})
	key := testKey(1)
	if err := s.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Put(key, []byte("y")); err != ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("Get after Close should miss")
	}
}

// TestStoreCrashConsistency is the torn-write sweep: for every
// prefix length of a written entry file (and for every single-byte
// corruption), a load either returns the full payload or a clean
// miss — never a partial payload, never a panic. Mirrors the journal
// torn-tail test.
func TestStoreCrashConsistency(t *testing.T) {
	key := testKey(42)
	payload := []byte(`{"id":"torn","tests":["0101","1010","xx11"]}`)

	// A pristine write to copy from.
	srcDir := t.TempDir()
	src := mustOpen(t, Config{Dir: srcDir})
	if err := src.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(srcDir, fileFromKey(key)))
	if err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, mutate func([]byte) []byte, wantFullOK bool) {
		t.Helper()
		dir := t.TempDir()
		data := mutate(append([]byte(nil), full...))
		if err := os.WriteFile(filepath.Join(dir, fileFromKey(key)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s := mustOpen(t, Config{Dir: dir})
		got, ok := s.Get(key)
		if wantFullOK {
			if !ok || string(got) != string(payload) {
				t.Fatalf("intact entry: got %q, %v", got, ok)
			}
			return
		}
		if ok {
			t.Fatalf("corrupt entry returned a hit: %q", got)
		}
		// A corrupted entry is removed, so the second read is a plain
		// miss with no further corruption counted.
		if _, ok := s.Get(key); ok {
			t.Fatal("corrupt entry not removed after first Get")
		}
		if c := s.MetricsRef().Corrupt.Load(); c != 1 {
			t.Fatalf("corrupt count = %d, want 1", c)
		}
	}

	t.Run("intact", func(t *testing.T) {
		check(t, func(b []byte) []byte { return b }, true)
	})

	// Truncation at every byte offset: the torn-write spectrum.
	for cut := 0; cut < len(full); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("truncate_%d", cut), func(t *testing.T) {
			check(t, func(b []byte) []byte { return b[:cut] }, false)
		})
	}

	// Single-byte corruption at every offset: header, length, CRC and
	// payload damage must all be detected.
	for off := 0; off < len(full); off++ {
		off := off
		t.Run(fmt.Sprintf("flip_%d", off), func(t *testing.T) {
			check(t, func(b []byte) []byte { b[off] ^= 0xff; return b }, false)
		})
	}

	// Trailing garbage after a complete frame is also rejected.
	t.Run("trailing", func(t *testing.T) {
		check(t, func(b []byte) []byte { return append(b, 0xAA) }, false)
	})
}

func TestStoreConcurrent(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir(), MaxEntries: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := testKey(g*4 + i%4)
				if err := s.Put(k, []byte(strings.Repeat("x", i+1))); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				s.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if s.Len() == 0 || s.Len() > 16 {
		t.Fatalf("Len = %d, want 1..16", s.Len())
	}
}

func TestKeyFileMapping(t *testing.T) {
	key := testKey(5)
	name := fileFromKey(key)
	if strings.ContainsRune(name, '/') {
		t.Fatalf("file name %q contains a path separator", name)
	}
	back, ok := keyFromFile(name)
	if !ok || back != key {
		t.Fatalf("round trip %q -> %q -> %q, ok=%v", key, name, back, ok)
	}
	if _, ok := keyFromFile("README.md"); ok {
		t.Fatal("non-entry file accepted")
	}
}
