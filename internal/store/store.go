// Package store is the digest-addressed on-disk result store the
// engine's in-memory LRU spills to (ROADMAP item 5): one file per
// cache key, written with the same atomic tmp+write+fsync+rename+
// dir-fsync sequence internal/journal uses, payloads framed with a
// magic header, length and CRC-32 so a torn or corrupted write is
// detected on load and degrades to a clean miss — never a partial
// read. The store is bounded (entry count and total bytes) with LRU
// eviction, and safe for concurrent use.
//
// Keys are the engine's composite cache keys
// (circuit/spec/fault-set digest hex separated by '/'); the slash is
// mapped to '-' for the file name, which is reversible because the
// digest alphabet is hex.
package store

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Frame layout: magic, then a little-endian uint32 payload length,
// a little-endian uint32 CRC-32 (IEEE) of the payload, then the
// payload itself. Anything shorter, longer, or checksum-mismatched
// is treated as corrupt.
const (
	magic      = "pdfstor1"
	headerSize = len(magic) + 8

	// suffix names complete entries; tmpSuffix names in-flight writes
	// that a crash may leave behind (swept at Open).
	suffix    = ".res"
	tmpSuffix = ".tmp"

	// DefaultMaxEntries bounds the store when Config.MaxEntries is 0.
	DefaultMaxEntries = 4096
	// DefaultMaxBytes bounds the store when Config.MaxBytes is 0.
	DefaultMaxBytes = 256 << 20
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Config configures Open.
type Config struct {
	// Dir is the store directory; created if missing.
	Dir string
	// MaxEntries bounds the number of entries (0 = DefaultMaxEntries,
	// negative = unbounded).
	MaxEntries int
	// MaxBytes bounds the total payload bytes (0 = DefaultMaxBytes,
	// negative = unbounded).
	MaxBytes int64
	// Logger receives corruption and eviction events; nil = silent.
	Logger *slog.Logger
}

// Metrics are the store's monotonic counters, exported by the engine
// registry as the pdfd_store_* family.
type Metrics struct {
	Hits      atomic.Int64
	Misses    atomic.Int64
	Puts      atomic.Int64
	PutErrors atomic.Int64
	Evictions atomic.Int64
	Corrupt   atomic.Int64
}

// Store is a bounded, digest-addressed on-disk result store.
type Store struct {
	cfg     Config
	logger  *slog.Logger
	metrics Metrics

	mu      sync.Mutex
	closed  bool
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // key -> element whose Value is *entry
	bytes   int64                    // sum of payload sizes

	entryCount atomic.Int64 // mirrors len(entries) for lock-free gauges
	byteCount  atomic.Int64 // mirrors bytes for lock-free gauges
}

type entry struct {
	key  string
	size int64
}

// Open scans dir (creating it if needed), indexes every complete
// entry ordered by modification time (oldest first becomes the LRU
// tail), removes leftover temporary files from interrupted writes,
// and returns the store. Corrupt entries are deleted lazily on Get,
// not at Open, so startup stays O(readdir).
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: Config.Dir is required")
	}
	if cfg.MaxEntries == 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := &Store{
		cfg:     cfg,
		logger:  logger,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.evictLocked()
	s.logger.Info("store opened", "dir", cfg.Dir, "entries", s.order.Len(), "bytes", s.bytes)
	return s, nil
}

// scan indexes the directory. Called before the store is shared, so
// no locking is needed.
func (s *Store) scan() error {
	dirents, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return fmt.Errorf("store: scan: %w", err)
	}
	type found struct {
		entry
		mtime int64
	}
	var all []found
	for _, de := range dirents {
		name := de.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			// A crash mid-write leaves a .tmp behind; it was never
			// renamed into place, so it holds no committed data.
			os.Remove(filepath.Join(s.cfg.Dir, name))
			continue
		}
		key, ok := keyFromFile(name)
		if !ok {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		size := info.Size() - int64(headerSize)
		if size < 0 {
			size = 0
		}
		all = append(all, found{entry{key: key, size: size}, info.ModTime().UnixNano()})
	}
	// Oldest first so the most recently touched entry ends up at the
	// front of the LRU list.
	sort.Slice(all, func(i, j int) bool {
		if all[i].mtime != all[j].mtime {
			return all[i].mtime < all[j].mtime
		}
		return all[i].key < all[j].key
	})
	for _, f := range all {
		e := f.entry
		s.entries[e.key] = s.order.PushFront(&entry{key: e.key, size: e.size})
		s.bytes += e.size
	}
	s.entryCount.Store(int64(len(s.entries)))
	s.byteCount.Store(s.bytes)
	return nil
}

// Get returns the payload stored under key, or ok=false on a miss.
// A torn or corrupted file is deleted and reported as a clean miss.
func (s *Store) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		s.metrics.Misses.Add(1)
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.metrics.Misses.Add(1)
		return nil, false
	}
	el, ok := s.entries[key]
	if !ok {
		s.metrics.Misses.Add(1)
		return nil, false
	}
	path := s.path(key)
	payload, err := readEntry(path)
	if err != nil {
		// Torn write, bit rot, or manual tampering: drop the entry so
		// the next Get is an honest miss and the slot is reusable.
		s.metrics.Corrupt.Add(1)
		s.metrics.Misses.Add(1)
		s.logger.Warn("store entry corrupt, removing", "key", key, "err", err)
		s.removeLocked(el)
		return nil, false
	}
	s.order.MoveToFront(el)
	s.metrics.Hits.Add(1)
	return payload, true
}

// Put durably stores payload under key: write to a temporary file,
// fsync it, rename into place, fsync the directory (the same
// sequence internal/journal.Compact uses, so a crash at any point
// leaves either the old entry or the new one, never a torn file).
func (s *Store) Put(key string, payload []byte) error {
	if !validKey(key) {
		s.metrics.PutErrors.Add(1)
		return fmt.Errorf("store: invalid key %q", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.metrics.PutErrors.Add(1)
		return ErrClosed
	}
	path := s.path(key)
	if err := writeEntry(path, payload); err != nil {
		s.metrics.PutErrors.Add(1)
		s.logger.Warn("store put failed", "key", key, "err", err)
		return err
	}
	size := int64(len(payload))
	if el, ok := s.entries[key]; ok {
		s.bytes += size - el.Value.(*entry).size
		el.Value.(*entry).size = size
		s.order.MoveToFront(el)
	} else {
		s.entries[key] = s.order.PushFront(&entry{key: key, size: size})
		s.bytes += size
	}
	s.metrics.Puts.Add(1)
	s.evictLocked()
	s.entryCount.Store(int64(len(s.entries)))
	s.byteCount.Store(s.bytes)
	return nil
}

// Len returns the number of entries.
func (s *Store) Len() int { return int(s.entryCount.Load()) }

// Bytes returns the total payload bytes stored.
func (s *Store) Bytes() int64 { return s.byteCount.Load() }

// MetricsRef exposes the counters for registry wiring.
func (s *Store) MetricsRef() *Metrics { return &s.metrics }

// Close marks the store closed. There is no background state to stop;
// subsequent Puts fail and Gets miss.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// evictLocked removes LRU-tail entries until both bounds hold.
func (s *Store) evictLocked() {
	for {
		over := (s.cfg.MaxEntries > 0 && s.order.Len() > s.cfg.MaxEntries) ||
			(s.cfg.MaxBytes > 0 && s.bytes > s.cfg.MaxBytes)
		if !over {
			return
		}
		el := s.order.Back()
		if el == nil {
			return
		}
		s.metrics.Evictions.Add(1)
		s.logger.Debug("store evict", "key", el.Value.(*entry).key)
		s.removeLocked(el)
	}
}

// removeLocked drops an entry from the index and the disk.
func (s *Store) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.order.Remove(el)
	delete(s.entries, e.key)
	s.bytes -= e.size
	os.Remove(s.path(e.key))
	s.entryCount.Store(int64(len(s.entries)))
	s.byteCount.Store(s.bytes)
}

func (s *Store) path(key string) string {
	return filepath.Join(s.cfg.Dir, fileFromKey(key))
}

// writeEntry performs the atomic durable write of one framed entry.
func writeEntry(path string, payload []byte) error {
	if len(payload) > int(^uint32(0)) {
		return fmt.Errorf("store: payload too large (%d bytes)", len(payload))
	}
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[len(magic):], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[len(magic)+4:], crc32.ChecksumIEEE(payload))

	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// readEntry loads and verifies one framed entry. Any framing or
// checksum violation returns an error (the caller treats it as
// corruption); a short file — the torn-write case — is included.
func readEntry(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("short header: %w", err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, errors.New("bad magic")
	}
	n := binary.LittleEndian.Uint32(hdr[len(magic):])
	want := binary.LittleEndian.Uint32(hdr[len(magic)+4:])
	payload := make([]byte, n)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("short payload: %w", err)
	}
	// A trailing byte means the file is not the frame we wrote.
	var one [1]byte
	if _, err := f.Read(one[:]); err != io.EOF {
		return nil, errors.New("trailing bytes after frame")
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, errors.New("checksum mismatch")
	}
	return payload, nil
}

// syncDir fsyncs a directory so a just-renamed file survives a
// crash; failure is ignored (some filesystems refuse directory
// fsync), matching internal/journal.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Cache keys are hex digests joined by '/'; the file name maps '/'
// to '-' (reversible: hex has no '-').

func validKey(key string) bool {
	if key == "" {
		return false
	}
	for _, r := range key {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'f', r == '/':
		default:
			return false
		}
	}
	return true
}

func fileFromKey(key string) string {
	return strings.ReplaceAll(key, "/", "-") + suffix
}

func keyFromFile(name string) (string, bool) {
	base, ok := strings.CutSuffix(name, suffix)
	if !ok {
		return "", false
	}
	key := strings.ReplaceAll(base, "-", "/")
	if !validKey(key) {
		return "", false
	}
	return key, true
}
