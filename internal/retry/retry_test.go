package retry

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock records every requested delay and fires timers instantly,
// so Do's schedule is observable without sleeping.
type fakeClock struct {
	mu     sync.Mutex
	delays []time.Duration
	block  bool // never fire; Do must fall through to ctx
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	c.delays = append(c.delays, d)
	block := c.block
	c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if !block {
		ch <- time.Time{}
	}
	return ch
}

func (c *fakeClock) recorded() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.delays...)
}

func TestDelayGrowthAndCap(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: 1 * time.Second, Multiplier: 2, Jitter: -1}
	want := []time.Duration{
		100 * time.Millisecond, // retry 1
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1 * time.Second, // capped
		1 * time.Second,
	}
	for i, w := range want {
		if got := p.Delay(i+1, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Out-of-range retry numbers clamp to the first delay.
	if got := p.Delay(0, nil); got != want[0] {
		t.Errorf("Delay(0) = %v, want %v", got, want[0])
	}
}

func TestDelayJitterBoundedAndSeeded(t *testing.T) {
	p := Policy{BaseDelay: 1 * time.Second, MaxDelay: time.Minute, Jitter: 0.5}
	r1 := rand.New(rand.NewSource(7))
	r2 := rand.New(rand.NewSource(7))
	for retry := 1; retry <= 6; retry++ {
		base := p.Delay(retry, nil)
		d1 := p.Delay(retry, r1)
		d2 := p.Delay(retry, r2)
		if d1 != d2 {
			t.Fatalf("same seed gave different jitter: %v vs %v", d1, d2)
		}
		lo := time.Duration(float64(base) * 0.5)
		hi := time.Duration(float64(base) * 1.5)
		if d1 < lo || d1 > hi {
			t.Errorf("retry %d: jittered delay %v outside [%v, %v]", retry, d1, lo, hi)
		}
	}
}

func TestZeroPolicyDefaults(t *testing.T) {
	var p Policy
	if got := p.Delay(1, nil); got != DefaultBaseDelay {
		t.Errorf("zero policy first delay = %v, want %v", got, DefaultBaseDelay)
	}
	if got := p.Delay(100, nil); got != DefaultMaxDelay {
		t.Errorf("zero policy capped delay = %v, want %v", got, DefaultMaxDelay)
	}
}

func TestDoSucceedsAfterFailures(t *testing.T) {
	clock := &fakeClock{}
	calls := 0
	err := Do(context.Background(), Policy{MaxRetries: 3, BaseDelay: 10 * time.Millisecond, Jitter: -1},
		clock, nil, func(attempt int) error {
			calls++
			if attempt != calls {
				t.Errorf("attempt %d reported on call %d", attempt, calls)
			}
			if attempt < 3 {
				return errors.New("flaky")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Do = %v, want success", err)
	}
	if calls != 3 {
		t.Errorf("fn called %d times, want 3", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	got := clock.recorded()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("backoff schedule %v, want %v", got, want)
	}
}

func TestDoExhaustsRetries(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Do(context.Background(), Policy{MaxRetries: 2, BaseDelay: time.Millisecond, Jitter: -1},
		&fakeClock{}, nil, func(int) error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want the last error", err)
	}
	if calls != 3 { // first try + 2 retries
		t.Errorf("fn called %d times, want 3", calls)
	}
}

func TestDoStopIsPermanent(t *testing.T) {
	bad := errors.New("bad input")
	calls := 0
	err := Do(context.Background(), Policy{MaxRetries: 5}, &fakeClock{}, nil,
		func(int) error { calls++; return Stop(bad) })
	if !errors.Is(err, bad) || calls != 1 {
		t.Errorf("Stop: err %v after %d calls, want %v after 1", err, calls, bad)
	}
	if !IsPermanent(Stop(bad)) || IsPermanent(bad) {
		t.Error("IsPermanent misclassifies")
	}
}

func TestDoContextErrorsNotRetried(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{MaxRetries: 5}, &fakeClock{}, nil,
		func(int) error { calls++; return context.DeadlineExceeded })
	if !errors.Is(err, context.DeadlineExceeded) || calls != 1 {
		t.Errorf("deadline error retried: err %v, %d calls", err, calls)
	}
}

func TestDoCanceledDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	clock := &fakeClock{block: true}
	done := make(chan error, 1)
	go func() {
		done <- Do(ctx, Policy{MaxRetries: 5, BaseDelay: time.Hour}, clock, nil,
			func(int) error { return errors.New("flaky") })
	}()
	// Give Do time to enter the backoff wait, then cancel.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Do = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not observe cancellation during backoff")
	}
}

func TestDoPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Do(ctx, Policy{}, &fakeClock{}, nil, func(int) error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Errorf("pre-canceled ctx: err %v, %d calls", err, calls)
	}
}
