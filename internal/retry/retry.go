// Package retry provides context-aware retry with jittered
// exponential backoff. The engine uses Policy.Delay to schedule job
// re-runs without holding a worker; Do is the synchronous form for
// callers that can afford to block. Time is abstracted behind Clock so
// the backoff schedule is unit-testable with a fake clock.
package retry

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Clock abstracts timer creation; tests substitute a fake.
type Clock interface {
	// After returns a channel that fires once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

type systemClock struct{}

func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// System is the wall clock.
var System Clock = systemClock{}

// Backoff defaults, used for zero-valued Policy fields.
const (
	DefaultBaseDelay  = 100 * time.Millisecond
	DefaultMaxDelay   = 30 * time.Second
	DefaultMultiplier = 2.0
	DefaultJitter     = 0.2
)

// Policy shapes an exponential backoff schedule. The zero value is a
// usable policy: no retries, 100ms→30s doubling delays with ±20%
// jitter (relevant once MaxRetries is raised).
type Policy struct {
	// MaxRetries is the number of re-attempts after the first try;
	// 0 means the first failure is final.
	MaxRetries int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the grown delay.
	MaxDelay time.Duration
	// Multiplier grows the delay between consecutive retries;
	// values <= 1 select the default (2).
	Multiplier float64
	// Jitter randomizes each delay by ±Jitter·delay. Negative
	// disables jitter; 0 selects the default (0.2).
	Jitter float64
}

func (p Policy) withDefaults() Policy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	if p.Multiplier <= 1 {
		p.Multiplier = DefaultMultiplier
	}
	if p.Jitter == 0 {
		p.Jitter = DefaultJitter
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// Delay returns the backoff preceding retry number retry (1-based:
// retry 1 follows the first failed attempt). rng supplies the jitter;
// nil yields the deterministic un-jittered schedule.
func (p Policy) Delay(retry int, rng *rand.Rand) time.Duration {
	p = p.withDefaults()
	if retry < 1 {
		retry = 1
	}
	d := float64(p.BaseDelay)
	for i := 1; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if rng != nil && p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

type stopError struct{ err error }

func (s *stopError) Error() string { return s.err.Error() }
func (s *stopError) Unwrap() error { return s.err }

// Stop wraps err so Do returns it immediately instead of retrying;
// use it for permanent failures (validation errors, not-found).
func Stop(err error) error { return &stopError{err} }

// IsPermanent reports whether err carries a Stop marker.
func IsPermanent(err error) bool {
	var s *stopError
	return errors.As(err, &s)
}

// Do calls fn (passing the 1-based attempt number) until it succeeds,
// returns a Stop-wrapped or context error, the policy's attempts are
// exhausted, or ctx expires during a backoff. It returns nil on
// success and the last error otherwise. A nil clock uses System; a
// nil rng disables jitter.
func Do(ctx context.Context, p Policy, clock Clock, rng *rand.Rand, fn func(attempt int) error) error {
	if clock == nil {
		clock = System
	}
	p = p.withDefaults()
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := fn(attempt)
		if err == nil {
			return nil
		}
		var s *stopError
		if errors.As(err, &s) {
			return s.err
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if attempt > p.MaxRetries {
			return err
		}
		select {
		case <-clock.After(p.Delay(attempt, rng)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
