package perfreg

import (
	"fmt"
	"sort"
)

// Thresholds tune the noisy-metric gates of Compare. Zero fields use
// the defaults; deterministic metrics (test count, coverage) have no
// threshold by design.
type Thresholds struct {
	// WallFrac is the fractional slowdown tolerated on the min wall
	// time before it counts as a regression; 0 means 0.35 (CI machines
	// are noisy neighbors).
	WallFrac float64
	// WallFloorSeconds is the absolute slowdown a case must also
	// exceed, so microsecond-scale cases cannot trip the fractional
	// gate on scheduler jitter; 0 means 0.05s.
	WallFloorSeconds float64
	// AllocFrac / AllocFloorBytes gate the min allocation volume the
	// same way; 0 means 0.30 and 1 MiB.
	AllocFrac       float64
	AllocFloorBytes uint64
}

func (t Thresholds) withDefaults() Thresholds {
	if t.WallFrac == 0 {
		t.WallFrac = 0.35
	}
	if t.WallFloorSeconds == 0 {
		t.WallFloorSeconds = 0.05
	}
	if t.AllocFrac == 0 {
		t.AllocFrac = 0.30
	}
	if t.AllocFloorBytes == 0 {
		t.AllocFloorBytes = 1 << 20
	}
	return t
}

// Regression is one gated metric that got worse past its threshold.
type Regression struct {
	Case   string `json:"case"`
	Metric string `json:"metric"`
	Detail string `json:"detail"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s: %s", r.Case, r.Metric, r.Detail)
}

// Compare diffs current against baseline case by case (matched on
// Name). It returns the regressions — the gate `make bench-check`
// fails on — and human-readable notes covering everything else worth
// a look: improvements, suite drift (cases added or removed), and
// environment changes.
func Compare(baseline, current *Snapshot, th Thresholds) ([]Regression, []string) {
	th = th.withDefaults()
	var regs []Regression
	var notes []string

	if baseline.GoVersion != current.GoVersion {
		notes = append(notes, fmt.Sprintf("go version changed: %s -> %s", baseline.GoVersion, current.GoVersion))
	}
	base := make(map[string]CaseResult, len(baseline.Cases))
	for _, c := range baseline.Cases {
		base[c.Name] = c
	}
	seen := make(map[string]bool, len(current.Cases))
	for _, cur := range current.Cases {
		seen[cur.Name] = true
		b, ok := base[cur.Name]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: new case, no baseline", cur.Name))
			continue
		}

		// Noisy gates: min-of-reps past fraction AND floor.
		if slow := cur.WallSecondsMin - b.WallSecondsMin; slow > th.WallFloorSeconds &&
			cur.WallSecondsMin > b.WallSecondsMin*(1+th.WallFrac) {
			regs = append(regs, Regression{cur.Name, "wall_seconds_min",
				fmt.Sprintf("%.3fs -> %.3fs (%+.0f%%, threshold %+.0f%%)",
					b.WallSecondsMin, cur.WallSecondsMin,
					100*slow/b.WallSecondsMin, 100*th.WallFrac)})
		} else if b.WallSecondsMin > th.WallFloorSeconds &&
			cur.WallSecondsMin < b.WallSecondsMin*(1-th.WallFrac) {
			notes = append(notes, fmt.Sprintf("%s: wall improved %.3fs -> %.3fs",
				cur.Name, b.WallSecondsMin, cur.WallSecondsMin))
		}
		if grew := cur.AllocBytesMin - b.AllocBytesMin; cur.AllocBytesMin > b.AllocBytesMin &&
			grew > th.AllocFloorBytes &&
			float64(cur.AllocBytesMin) > float64(b.AllocBytesMin)*(1+th.AllocFrac) {
			regs = append(regs, Regression{cur.Name, "alloc_bytes_min",
				fmt.Sprintf("%d -> %d bytes (%+.0f%%, threshold %+.0f%%)",
					b.AllocBytesMin, cur.AllocBytesMin,
					100*float64(grew)/float64(b.AllocBytesMin), 100*th.AllocFrac)})
		}

		// Deterministic gates: exact.
		if cur.Tests > b.Tests {
			regs = append(regs, Regression{cur.Name, "tests",
				fmt.Sprintf("test set grew %d -> %d", b.Tests, cur.Tests)})
		} else if cur.Tests < b.Tests {
			notes = append(notes, fmt.Sprintf("%s: test set shrank %d -> %d", cur.Name, b.Tests, cur.Tests))
		}
		if cur.P0Detected < b.P0Detected {
			regs = append(regs, Regression{cur.Name, "p0_detected",
				fmt.Sprintf("P0 coverage dropped %d -> %d of %d", b.P0Detected, cur.P0Detected, cur.P0Targets)})
		}
		if cur.P1Detected < b.P1Detected {
			regs = append(regs, Regression{cur.Name, "p1_detected",
				fmt.Sprintf("P1 coverage dropped %d -> %d of %d", b.P1Detected, cur.P1Detected, cur.P1Targets)})
		}
	}
	var gone []string
	for name := range base {
		if !seen[name] {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		notes = append(notes, fmt.Sprintf("%s: case removed from suite (was in baseline)", name))
	}
	return regs, notes
}
