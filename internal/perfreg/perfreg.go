// Package perfreg is the performance-regression harness behind
// cmd/pdfbench and `make bench` / `make bench-check`: it runs a fixed
// suite of generation and enrichment workloads through the job engine,
// records wall time, per-stage span durations (from the engine's
// per-job obs trace), allocations, test-set size and P0/P1 coverage
// into a schema-versioned snapshot (the committed BENCH_<date>.json
// files), and compares a fresh run against a committed baseline with
// noise-aware thresholds so CI can fail on real slowdowns without
// flaking on jitter.
//
// Two classes of metric get two different gates:
//
//   - Timing and allocation are noisy: the comparison uses the
//     minimum over reps (the least-disturbed run) and flags only
//     changes past both a fractional threshold and an absolute floor.
//   - Test-set size and fault coverage are deterministic for a fixed
//     seed: any growth in tests or drop in detection is a regression,
//     with no tolerance.
package perfreg

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// SchemaVersion stamps every snapshot; Compare refuses to diff
// mismatched versions rather than mis-read fields.
const SchemaVersion = 1

// Case is one fixed workload of the suite.
type Case struct {
	// Name identifies the case across snapshots; comparisons match on
	// it, so renaming a case resets its history.
	Name      string      `json:"name"`
	Kind      engine.Kind `json:"kind"`
	Circuit   string      `json:"circuit"`
	NP        int         `json:"np,omitempty"`
	NP0       int         `json:"np0,omitempty"`
	Seed      int64       `json:"seed"`
	Heuristic string      `json:"heuristic,omitempty"`
	Collapse  bool        `json:"collapse,omitempty"`
	UseBnB    bool        `json:"bnb,omitempty"`
	// Traced submits the job under a sampled W3C trace context, the way
	// a coordinator-routed submission arrives: the job adopts the remote
	// identity and its completion feeds the tail-retention buffer and
	// histogram exemplars. The case exists to keep that bookkeeping
	// visible to the regression gate.
	Traced bool `json:"traced,omitempty"`
}

// DefaultSuite is the benchmark suite of `make bench`: the real c17
// circuit plus synthetic stand-ins from internal/synth, across the
// generate and enrich procedures and both justification backends.
// Budgets are sized so the whole suite at 3 reps stays in seconds.
func DefaultSuite() []Case {
	return []Case{
		{Name: "c17-generate", Kind: engine.KindGenerate, Circuit: "c17", NP0: 4, Seed: 1},
		{Name: "c17-enrich-collapse", Kind: engine.KindEnrich, Circuit: "c17", NP0: 4, Seed: 1, Collapse: true},
		{Name: "s641-enrich", Kind: engine.KindEnrich, Circuit: "s641", NP: 1000, NP0: 200, Seed: 1},
		{Name: "s953-enrich", Kind: engine.KindEnrich, Circuit: "s953", NP: 1000, NP0: 200, Seed: 1},
		{Name: "b09-generate", Kind: engine.KindGenerate, Circuit: "b09", NP: 500, NP0: 30, Seed: 1},
		{Name: "s1196-enrich-bnb", Kind: engine.KindEnrich, Circuit: "s1196", NP: 1000, NP0: 10, Seed: 1, UseBnB: true},
		{Name: "c17-generate-traced", Kind: engine.KindGenerate, Circuit: "c17", NP0: 4, Seed: 1, Traced: true},
	}
}

// CaseResult aggregates one case's reps.
type CaseResult struct {
	Name    string      `json:"name"`
	Kind    engine.Kind `json:"kind"`
	Circuit string      `json:"circuit"`
	Reps    int         `json:"reps"`

	// Noisy metrics: minimum and mean over reps. The minimum is the
	// comparison input — it is the run least disturbed by scheduling.
	WallSecondsMin  float64 `json:"wall_seconds_min"`
	WallSecondsMean float64 `json:"wall_seconds_mean"`
	AllocBytesMin   uint64  `json:"alloc_bytes_min"`

	// StageSeconds is the per-stage span time of the fastest rep,
	// keyed by span name (prepare, generation, simulation, ...),
	// summed over same-named spans within the job trace.
	StageSeconds map[string]float64 `json:"stage_seconds"`

	// Deterministic outcome metrics: identical across reps for a fixed
	// seed (Run fails if they are not).
	Tests         int `json:"tests"`
	PrimaryAborts int `json:"primary_aborts"`
	P0Detected    int `json:"p0_detected"`
	P0Targets     int `json:"p0_targets"`
	P1Detected    int `json:"p1_detected"`
	P1Targets     int `json:"p1_targets"`
}

// Snapshot is the BENCH_<date>.json payload.
type Snapshot struct {
	SchemaVersion int    `json:"schema_version"`
	CreatedAt     string `json:"created_at"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	Reps          int    `json:"reps"`

	Cases []CaseResult `json:"cases"`
}

// Options configures Run.
type Options struct {
	// Reps is the repetition count per case; <= 0 means 3.
	Reps int
	// Log, when set, receives one progress line per rep.
	Log io.Writer
}

// Run executes the suite and returns the aggregated snapshot. Every
// rep runs the full pipeline (the result cache is bypassed) on a
// single-worker engine, so stage timings are never overlapped by a
// concurrent case. Deterministic outcome metrics must agree across
// reps; a mismatch is an error, because it means the procedures lost
// seed-determinism — itself a regression no threshold should absorb.
func Run(ctx context.Context, suite []Case, opts Options) (*Snapshot, error) {
	reps := opts.Reps
	if reps <= 0 {
		reps = 3
	}
	e := engine.New(engine.Config{Workers: 1, SimWorkers: 1})
	defer e.Close()

	snap := &Snapshot{
		SchemaVersion: SchemaVersion,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Reps:          reps,
	}
	for _, c := range suite {
		cr, err := runCase(ctx, e, c, reps, opts.Log)
		if err != nil {
			return nil, fmt.Errorf("case %s: %w", c.Name, err)
		}
		snap.Cases = append(snap.Cases, *cr)
	}
	return snap, nil
}

func runCase(ctx context.Context, e *engine.Engine, c Case, reps int, log io.Writer) (*CaseResult, error) {
	spec := engine.Spec{
		Kind: c.Kind, Circuit: c.Circuit, NP: c.NP, NP0: c.NP0, Seed: c.Seed,
		Heuristic: c.Heuristic, Collapse: c.Collapse, UseBnB: c.UseBnB,
		Workers: 1, NoCache: true,
	}
	cr := &CaseResult{Name: c.Name, Kind: c.Kind, Circuit: c.Circuit, Reps: reps}
	runCtx := ctx
	if c.Traced {
		runCtx = obs.WithTraceContext(ctx, obs.NewTraceContext(true))
	}
	var wallSum float64
	var ms runtime.MemStats
	for rep := 0; rep < reps; rep++ {
		runtime.ReadMemStats(&ms)
		allocBefore := ms.TotalAlloc
		start := time.Now()
		v, err := e.RunJob(runCtx, spec)
		wall := time.Since(start).Seconds()
		if err != nil {
			return nil, err
		}
		if v.Status != engine.StatusDone {
			return nil, fmt.Errorf("rep %d finished %s: %s", rep, v.Status, v.Error)
		}
		runtime.ReadMemStats(&ms)
		alloc := ms.TotalAlloc - allocBefore

		wallSum += wall
		if rep == 0 || wall < cr.WallSecondsMin {
			cr.WallSecondsMin = wall
			cr.StageSeconds = stageSeconds(v.Trace)
		}
		if rep == 0 || alloc < cr.AllocBytesMin {
			cr.AllocBytesMin = alloc
		}

		r := v.Result
		if r == nil {
			return nil, fmt.Errorf("rep %d returned no result", rep)
		}
		if rep == 0 {
			cr.Tests = r.TestCount
			cr.PrimaryAborts = r.PrimaryAborts
			cr.P0Detected, cr.P0Targets = r.P0Detected, r.P0Targets
			cr.P1Detected, cr.P1Targets = r.P1Detected, r.P1Targets
		} else if cr.Tests != r.TestCount || cr.P0Detected != r.P0Detected || cr.P1Detected != r.P1Detected {
			return nil, fmt.Errorf("rep %d lost determinism: tests %d/%d, p0 %d/%d, p1 %d/%d",
				rep, r.TestCount, cr.Tests, r.P0Detected, cr.P0Detected, r.P1Detected, cr.P1Detected)
		}
		if log != nil {
			fmt.Fprintf(log, "%-22s rep %d/%d  %8.1f ms  %5d tests  p0 %d/%d  p1 %d/%d\n",
				c.Name, rep+1, reps, wall*1000, r.TestCount,
				r.P0Detected, r.P0Targets, r.P1Detected, r.P1Targets)
		}
	}
	cr.WallSecondsMean = wallSum / float64(reps)
	return cr, nil
}

// stageSeconds folds a job's span timeline into per-name totals in
// seconds. The structural spans (job, queued, attempt) are skipped:
// they measure the engine, not the pipeline.
func stageSeconds(tv *obs.TraceView) map[string]float64 {
	out := make(map[string]float64)
	if tv == nil {
		return out
	}
	for _, s := range tv.Spans {
		switch s.Name {
		case "job", "queued", "attempt":
			continue
		}
		if s.DurMS < 0 {
			continue
		}
		out[s.Name] += s.DurMS / 1000
	}
	return out
}

// WriteFile marshals the snapshot to path (indented, trailing
// newline), creating or truncating it.
func (s *Snapshot) WriteFile(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadFile loads a snapshot and validates its schema version.
func ReadFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%s: snapshot schema v%d, this binary speaks v%d", path, s.SchemaVersion, SchemaVersion)
	}
	return &s, nil
}
