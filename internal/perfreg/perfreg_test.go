package perfreg

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
)

func tinySuite() []Case {
	return []Case{
		{Name: "s27-generate", Kind: engine.KindGenerate, Circuit: "s27", NP: 8, Seed: 1},
		{Name: "s27-enrich", Kind: engine.KindEnrich, Circuit: "s27", NP: 16, NP0: 8, Seed: 1},
	}
}

func TestRunProducesCoherentSnapshot(t *testing.T) {
	snap, err := Run(context.Background(), tinySuite(), Options{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if snap.SchemaVersion != SchemaVersion || snap.Reps != 2 || snap.GoVersion == "" {
		t.Fatalf("bad snapshot header: %+v", snap)
	}
	if len(snap.Cases) != 2 {
		t.Fatalf("got %d cases, want 2", len(snap.Cases))
	}
	for _, c := range snap.Cases {
		if c.WallSecondsMin <= 0 || c.WallSecondsMean < c.WallSecondsMin {
			t.Errorf("%s: wall min %v mean %v incoherent", c.Name, c.WallSecondsMin, c.WallSecondsMean)
		}
		if c.Tests <= 0 || c.P0Detected <= 0 {
			t.Errorf("%s: empty outcome: %+v", c.Name, c)
		}
		for _, stage := range []string{"prepare", "generation"} {
			if _, ok := c.StageSeconds[stage]; !ok {
				t.Errorf("%s: stage %q missing from %v", c.Name, stage, c.StageSeconds)
			}
		}
	}
	if enrich := snap.Cases[1]; enrich.P1Targets == 0 || enrich.P1Detected == 0 {
		t.Errorf("enrich case recorded no P1 outcome: %+v", enrich)
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cases) != len(snap.Cases) || back.Cases[0].Tests != snap.Cases[0].Tests {
		t.Errorf("snapshot did not round-trip: %+v vs %+v", back.Cases, snap.Cases)
	}

	// A run compared against its own snapshot never regresses.
	if regs, _ := Compare(snap, snap, Thresholds{}); len(regs) != 0 {
		t.Errorf("self-comparison found regressions: %v", regs)
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema_version": 99, "cases": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("schema mismatch must fail")
	}
}

func baselinePair() (*Snapshot, *Snapshot) {
	mk := func() *Snapshot {
		return &Snapshot{
			SchemaVersion: SchemaVersion, GoVersion: "go1.22", Reps: 3,
			Cases: []CaseResult{{
				Name: "case-a", Kind: engine.KindEnrich, Circuit: "s641", Reps: 3,
				WallSecondsMin: 0.200, WallSecondsMean: 0.220, AllocBytesMin: 64 << 20,
				Tests: 40, P0Detected: 180, P0Targets: 200, P1Detected: 300, P1Targets: 800,
			}},
		}
	}
	return mk(), mk()
}

func TestCompareGates(t *testing.T) {
	t.Run("identical is clean", func(t *testing.T) {
		base, cur := baselinePair()
		if regs, _ := Compare(base, cur, Thresholds{}); len(regs) != 0 {
			t.Errorf("regressions on identical snapshots: %v", regs)
		}
	})
	t.Run("doctored slow baseline trips the wall gate", func(t *testing.T) {
		base, cur := baselinePair()
		base.Cases[0].WallSecondsMin = 0.050 // current 0.200 = 4x, +150ms
		regs, _ := Compare(base, cur, Thresholds{})
		if len(regs) != 1 || regs[0].Metric != "wall_seconds_min" {
			t.Fatalf("want one wall regression, got %v", regs)
		}
	})
	t.Run("slowdown under the absolute floor is noise", func(t *testing.T) {
		base, cur := baselinePair()
		base.Cases[0].WallSecondsMin = 0.010 // 3x but only +20ms
		cur.Cases[0].WallSecondsMin = 0.030
		if regs, _ := Compare(base, cur, Thresholds{}); len(regs) != 0 {
			t.Errorf("sub-floor slowdown flagged: %v", regs)
		}
	})
	t.Run("slowdown under the fraction is noise", func(t *testing.T) {
		base, cur := baselinePair()
		cur.Cases[0].WallSecondsMin = 0.260 // +30% < 35%, though +60ms > floor
		if regs, _ := Compare(base, cur, Thresholds{}); len(regs) != 0 {
			t.Errorf("sub-threshold slowdown flagged: %v", regs)
		}
	})
	t.Run("allocation growth trips the alloc gate", func(t *testing.T) {
		base, cur := baselinePair()
		cur.Cases[0].AllocBytesMin = 128 << 20 // 2x, +64MiB
		regs, _ := Compare(base, cur, Thresholds{})
		if len(regs) != 1 || regs[0].Metric != "alloc_bytes_min" {
			t.Fatalf("want one alloc regression, got %v", regs)
		}
	})
	t.Run("deterministic gates are exact", func(t *testing.T) {
		base, cur := baselinePair()
		cur.Cases[0].Tests = 41       // one extra test: regression
		cur.Cases[0].P0Detected = 179 // one lost fault: regression
		cur.Cases[0].P1Detected = 299
		regs, _ := Compare(base, cur, Thresholds{})
		if len(regs) != 3 {
			t.Fatalf("want tests+p0+p1 regressions, got %v", regs)
		}
	})
	t.Run("suite drift is a note, not a failure", func(t *testing.T) {
		base, cur := baselinePair()
		cur.Cases[0].Name = "case-b"
		regs, notes := Compare(base, cur, Thresholds{})
		if len(regs) != 0 {
			t.Errorf("renamed case flagged as regression: %v", regs)
		}
		if len(notes) != 2 { // new case + removed case
			t.Errorf("want 2 drift notes, got %v", notes)
		}
	})
}
