package lint

import (
	"go/ast"
	"strings"
)

// AnalyzerTracePropagation polices context propagation on the
// cluster's outbound requests: every backend-bound HTTP request must
// carry the W3C traceparent and the forwarded X-Request-ID, and the
// only place those headers are injected is the coordinator's single
// request constructor. The analyzer therefore flags any call to
// http.NewRequest / http.NewRequestWithContext in a cluster package
// that is not inside that constructor (the project convention is
// newOutboundRequest; any function whose name contains
// "outboundrequest" counts, case-insensitive). A raw NewRequest
// elsewhere ships a request with no trace identity, and the backend's
// spans silently detach from the caller's trace.
var AnalyzerTracePropagation = &Analyzer{
	Name: "tracepropagation",
	Doc:  "raw http.NewRequest in a cluster package outside the trace-header-injecting helper",
	Run:  runTracePropagation,
}

func runTracePropagation(pass *Pass) {
	if !pass.Config.Cluster(pass.Pkg) {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			if isOutboundHelper(fd.Name.Name) {
				continue // the one sanctioned construction site
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return true
				}
				pkgPath, name, ok := pkgFuncCall(pass, file, call)
				if ok && pkgPath == "net/http" && strings.HasPrefix(name, "NewRequest") {
					pass.Reportf(call.Pos(),
						"http.%s bypasses the outbound-request helper: build backend requests with newOutboundRequest so they carry traceparent and X-Request-ID", name)
				}
				return true
			})
		}
	}
}

// isOutboundHelper matches the sanctioned constructor by name
// convention: newOutboundRequest, NewOutboundRequest, ...
func isOutboundHelper(name string) bool {
	return strings.Contains(strings.ToLower(name), "outboundrequest")
}
