package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// JSONReport is the stable `pdflint -json` schema (documented in
// API.md, "Tooling appendix"). Version bumps only on breaking shape
// changes; the bench harness archives this object verbatim alongside
// BENCH snapshots. v2 adds per-finding stable IDs and interprocedural
// provenance chains (the `id` and `chain` fields on diagnostics).
type JSONReport struct {
	// Version is the schema version (currently 2).
	Version int `json:"version"`
	// Clean is true when no diagnostic survived suppression.
	Clean bool `json:"clean"`
	// Diagnostics are the surviving findings, sorted by file, line,
	// column, analyzer.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Suppressed are the //lint:ignore'd findings with their recorded
	// reasons, same order.
	Suppressed []Suppression `json:"suppressed"`
	// Counts maps analyzer name to surviving-diagnostic count; absent
	// analyzers found nothing.
	Counts map[string]int `json:"counts"`
}

// Report converts a run result into the JSON schema, with file paths
// rewritten relative to root (so output is stable across checkouts)
// and finding IDs computed over the relativized position.
func (r *Result) Report(root string) *JSONReport {
	rep := &JSONReport{
		Version:     2,
		Clean:       len(r.Diags) == 0,
		Diagnostics: make([]Diagnostic, 0, len(r.Diags)),
		Suppressed:  make([]Suppression, 0, len(r.Suppressed)),
		Counts:      make(map[string]int),
	}
	for _, d := range r.Diags {
		d.File = relPath(root, d.File)
		if len(d.Chain) > 0 {
			chain := make([]ChainFrame, len(d.Chain))
			for i, f := range d.Chain {
				f.File = relPath(root, f.File)
				chain[i] = f
			}
			d.Chain = chain
		}
		d.ID = FindingID(d)
		rep.Diagnostics = append(rep.Diagnostics, d)
		rep.Counts[d.Analyzer]++
	}
	for _, s := range r.Suppressed {
		s.File = relPath(root, s.File)
		rep.Suppressed = append(rep.Suppressed, s)
	}
	return rep
}

// FindingID derives the stable identifier of a diagnostic: the first
// 12 hex digits of a SHA-256 over analyzer, (relative) file, position
// and message. Stable across runs and checkouts; changes only when
// the finding itself moves or reworded.
func FindingID(d Diagnostic) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%d|%d|%s",
		d.Analyzer, d.File, d.Line, d.Col, d.Message)))
	return hex.EncodeToString(h[:6])
}

func relPath(root, path string) string {
	if root == "" {
		return path
	}
	if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) &&
		rel != ".." && !hasDotDotPrefix(rel) {
		return filepath.ToSlash(rel)
	}
	return path
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// WriteText renders the report in the classic file:line:col form,
// one diagnostic per line, followed by a summary.
func (rep *JSONReport) WriteText(w io.Writer, verbose bool) {
	for _, d := range rep.Diagnostics {
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
	}
	if verbose {
		for _, s := range rep.Suppressed {
			fmt.Fprintf(w, "%s:%d: [%s] suppressed: %s (reason: %s)\n",
				s.File, s.Line, s.Analyzer, s.Message, s.Reason)
		}
	}
	if len(rep.Diagnostics) == 0 {
		fmt.Fprintf(w, "pdflint: clean (%d suppression(s) on file)\n", len(rep.Suppressed))
		return
	}
	names := make([]string, 0, len(rep.Counts))
	for n := range rep.Counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "pdflint: %d finding(s):", len(rep.Diagnostics))
	for _, n := range names {
		fmt.Fprintf(w, " %s=%d", n, rep.Counts[n])
	}
	fmt.Fprintln(w)
}

// WriteJSON renders the report as indented JSON.
func (rep *JSONReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
