package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The interprocedural layer starts from a module-wide call graph:
// every function declaration of every loaded package is a node, and a
// resolved call site is an edge. Resolution covers same-package
// callees and cross-package callees (the normal exported-function and
// method cases) through the type checker's Uses map — the loader
// type-checks the module in dependency order with one shared importer,
// so a *types.Func seen at a call site in internal/cluster is the very
// object defined in internal/engine. Interface-method calls, function
// values and method values stay unresolved; the facts engine treats
// them as opaque (a soundness limit documented in DESIGN.md).

// FuncKey names one function declaration module-wide, in the
// go/types.Func FullName form: "repro/internal/engine.SpecDigest" for
// a function, "(*repro/internal/engine.Engine).Submit" for a method.
type FuncKey string

// CallSite is one resolved call from Caller to Callee.
type CallSite struct {
	Caller *FuncNode
	Callee *FuncNode
	// Pos positions the call expression.
	Pos token.Pos
	// Call is the call expression itself (argument inspection).
	Call *ast.CallExpr
	// Held snapshots the lock classes held at the call (see facts.go
	// for the lock-class naming).
	Held []string
	// Async marks a call that runs outside the caller's control flow: a
	// `go` statement, or any call inside a goroutine-launched function
	// literal. Async edges propagate no caller-visible facts (the
	// caller does not block on them and does not hold its locks around
	// them).
	Async bool
}

// FuncNode is one function declaration with its resolved call sites
// and computed summary.
type FuncNode struct {
	Key  FuncKey
	Pkg  *Package
	File *ast.File
	Decl *ast.FuncDecl
	Obj  *types.Func

	// Calls are the resolved module-local call sites in source order.
	Calls []*CallSite

	// Summary holds the fixed-point facts (facts.go).
	Summary Summary

	// intra facts recorded by the walker, inputs to the fixed point.
	ownBlockPos token.Pos
	ownBlockWhy string
	ownAcquires map[string]token.Pos
	lockEdges   []lockEdge // intra-procedural acquisition-order edges

	// taintedVars is the final intra-procedural taint environment
	// (object -> mark), kept for the nondetflow reporting walk.
	taintedVars map[types.Object]taintMark

	// resources: objects acquired in this function (closeleak.go).
	scc int // SCC index (callees-first order)
}

// lockEdge is one acquisition-order edge: "to" acquired while "from"
// held, at pos inside node. via is the call site that imported the
// acquisition from a callee (nil when the Lock call is right here).
type lockEdge struct {
	from, to string
	pos      token.Pos
	node     *FuncNode
	via      *CallSite
}

// CallGraph indexes the module's function declarations.
type CallGraph struct {
	// Nodes in deterministic source order: packages as loaded (sorted
	// directories), files sorted within a package, declarations in
	// position order.
	Nodes []*FuncNode

	byKey map[FuncKey]*FuncNode
	byObj map[*types.Func]*FuncNode

	// SCCs are the strongly connected components of the synchronous
	// (non-Async) call relation, callees before callers, so one pass in
	// this order reaches the fixed point for the acyclic part and only
	// cycles iterate.
	SCCs [][]*FuncNode
}

// NodeByKey resolves a FuncKey, or nil.
func (g *CallGraph) NodeByKey(k FuncKey) *FuncNode { return g.byKey[k] }

func (g *CallGraph) nodeByObj(o *types.Func) *FuncNode {
	if o == nil {
		return nil
	}
	if n, ok := g.byObj[o]; ok {
		return n
	}
	// Cross-load identity fallback (should not trigger with the shared
	// importer, but a partial type check can intern a second object).
	if n, ok := g.byKey[FuncKey(o.FullName())]; ok {
		return n
	}
	return nil
}

// buildCallGraph collects the nodes of pkgs. Call sites are resolved
// later by the facts walker (it threads lock state while it walks).
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		byKey: make(map[FuncKey]*FuncNode),
		byObj: make(map[*types.Func]*FuncNode),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, isFunc := decl.(*ast.FuncDecl)
				if !isFunc || fd.Body == nil {
					continue
				}
				var obj *types.Func
				if pkg.Info != nil {
					if o, isFn := pkg.Info.Defs[fd.Name].(*types.Func); isFn {
						obj = o
					}
				}
				key := FuncKey(pkg.PkgPath + "." + fd.Name.Name)
				if obj != nil {
					key = FuncKey(obj.FullName())
				}
				n := &FuncNode{
					Key: key, Pkg: pkg, File: file, Decl: fd, Obj: obj,
					ownAcquires: make(map[string]token.Pos),
				}
				g.Nodes = append(g.Nodes, n)
				g.byKey[key] = n
				if obj != nil {
					g.byObj[obj] = n
				}
			}
		}
	}
	return g
}

// resolveCallee maps a call expression to its FuncNode: a direct call
// to a declared function or a concrete method of a module package.
// Interface dispatch and function values return nil.
func (g *CallGraph) resolveCallee(pkg *Package, call *ast.CallExpr) *FuncNode {
	if pkg.Info == nil {
		return nil
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj, _ := pkg.Info.Uses[id].(*types.Func)
	if obj == nil {
		return nil
	}
	if sig, isSig := obj.Type().(*types.Signature); isSig && sig.Recv() != nil {
		// Interface methods have no body to resolve to; nodeByObj
		// misses them and we correctly return nil.
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			return nil
		}
	}
	return g.nodeByObj(obj)
}

// computeSCCs runs Tarjan over the synchronous call relation and
// stores components callees-first. Node order inside a component and
// the component order itself are deterministic (derived from the
// deterministic Nodes order).
func (g *CallGraph) computeSCCs() {
	index := make(map[*FuncNode]int)
	low := make(map[*FuncNode]int)
	onStack := make(map[*FuncNode]bool)
	var stack []*FuncNode
	next := 0
	var sccs [][]*FuncNode

	// Iterative Tarjan (module bodies nest deep enough that recursion
	// depth is still fine, but iteration avoids any pathological case).
	type frame struct {
		n  *FuncNode
		ei int
	}
	edges := func(n *FuncNode) []*CallSite { return n.Calls }
	for _, root := range g.Nodes {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{n: root}}
		for len(work) > 0 {
			fr := &work[len(work)-1]
			n := fr.n
			if fr.ei == 0 {
				index[n] = next
				low[n] = next
				next++
				stack = append(stack, n)
				onStack[n] = true
			}
			advanced := false
			for fr.ei < len(edges(n)) {
				cs := edges(n)[fr.ei]
				fr.ei++
				if cs.Async || cs.Callee == nil {
					continue
				}
				m := cs.Callee
				if _, seen := index[m]; !seen {
					work = append(work, frame{n: m})
					advanced = true
					break
				} else if onStack[m] && index[m] < low[n] {
					low[n] = index[m]
				}
			}
			if advanced {
				continue
			}
			if low[n] == index[n] {
				var comp []*FuncNode
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					comp = append(comp, m)
					if m == n {
						break
					}
				}
				sort.Slice(comp, func(i, j int) bool { return comp[i].Decl.Pos() < comp[j].Decl.Pos() })
				for _, m := range comp {
					m.scc = len(sccs)
				}
				sccs = append(sccs, comp)
				work = work[:len(work)-1]
				continue
			}
			work = work[:len(work)-1]
			parent := &work[len(work)-1]
			if low[n] < low[parent.n] {
				low[parent.n] = low[n]
			}
		}
	}
	g.SCCs = sccs
}
