package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerRand flags package-level math/rand (and math/rand/v2)
// functions in the deterministic packages. Those draw from the
// process-global, unseeded source, so two runs with the same
// Config.Seed produce different tests — breaking the result cache,
// journal replay and the perfreg cross-rep determinism gate.
// Constructing an explicit seeded generator (rand.New,
// rand.NewSource, rand.NewPCG, ...) is fine.
var AnalyzerRand = &Analyzer{
	Name: "rand",
	Doc:  "unseeded math/rand package-level function in a deterministic package",
	Run:  runRand,
}

// randConstructors build explicit sources/generators and are allowed.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runRand(pass *Pass) {
	if !pass.Config.Deterministic(pass.Pkg) {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			pkgPath, name, ok := pkgFuncCall(pass, file, call)
			if !ok || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") {
				return true
			}
			if randConstructors[name] {
				return true
			}
			pass.Reportf(call.Pos(),
				"unseeded %s.%s: use a *rand.Rand seeded from Config.Seed so runs are reproducible",
				pkgPath, name)
			return true
		})
	}
}

// AnalyzerTimeNow flags time.Now and time.Since in the deterministic
// packages unless the call site carries a //lint:telemetry annotation
// (same line or the line above). Wall-clock reads are fine for spans
// and Elapsed fields — and nothing else: a timestamp that leaks into
// a generated test, ordering decision or digest makes replay diverge.
var AnalyzerTimeNow = &Analyzer{
	Name: "timenow",
	Doc:  "time.Now/time.Since outside //lint:telemetry call sites in a deterministic package",
	Run:  runTimeNow,
}

func runTimeNow(pass *Pass) {
	if !pass.Config.Deterministic(pass.Pkg) {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			pkgPath, name, ok := pkgFuncCall(pass, file, call)
			if !ok || pkgPath != "time" || (name != "Now" && name != "Since") {
				return true
			}
			line := pass.Pkg.Fset.Position(call.Pos()).Line
			if telemetryAnnotated(pass.Pkg, file, line) {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s in deterministic package %s: results must not depend on the wall clock (annotate //lint:telemetry if observational only)",
				name, pass.Pkg.PkgPath)
			return true
		})
	}
}

// AnalyzerMapOrder flags ranging over a map where the loop body feeds
// an ordered sink — appending to an outer slice, building an outer
// string, writing to a Builder/Buffer or emitting output — without
// the sink being sorted later in the same function. Go randomizes map
// iteration order per run, so such loops are exactly how
// nondeterminism sneaks into fault lists, path orderings and emitted
// tests.
var AnalyzerMapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration feeding an ordered result without an intervening sort",
	Run:  runMapOrder,
}

// mapSink is one ordered write found inside a range-over-map body.
type mapSink struct {
	pos  token.Pos
	what string
	// obj is the sink object (slice/string var) when a later sort on
	// it clears the finding; nil means the write is inherently
	// ordered (io emission) and only //lint:ignore can clear it.
	obj types.Object
}

func runMapOrder(pass *Pass) {
	if !pass.Config.Deterministic(pass.Pkg) {
		return
	}
	for _, file := range pass.Pkg.Files {
		funcBodies(file, func(name string, body *ast.BlockStmt) {
			runMapOrderFunc(pass, file, body)
		})
	}
}

func runMapOrderFunc(pass *Pass, file *ast.File, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n.Pos() != body.Pos() {
			return false // literals are analyzed as their own frame
		}
		rs, isRange := n.(*ast.RangeStmt)
		if !isRange {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, sink := range orderedSinks(pass, file, rs) {
			if sink.obj != nil && sortedAfter(pass, body, rs, sink.obj) {
				continue
			}
			pass.Reportf(sink.pos,
				"%s inside range over map %s: map iteration order is random — sort the keys first, or sort the result before it is used",
				sink.what, exprString(rs.X))
		}
		return true
	})
}

// orderedSinks finds writes to order-sensitive outer state inside the
// range body.
func orderedSinks(pass *Pass, file *ast.File, rs *ast.RangeStmt) []mapSink {
	var sinks []mapSink
	outer := func(e ast.Expr) types.Object {
		id, isIdent := e.(*ast.Ident)
		if !isIdent {
			return nil
		}
		obj := pass.ObjectOf(id)
		if obj == nil || obj.Pos() == token.NoPos || obj.Pos() >= rs.Pos() {
			return nil // declared inside the loop (or unresolved)
		}
		return obj
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, isCall := rhs.(*ast.CallExpr)
				if !isCall || len(call.Args) == 0 {
					continue
				}
				fid, isIdent := call.Fun.(*ast.Ident)
				if !isIdent || fid.Name != "append" {
					continue
				}
				if i >= len(n.Lhs) && len(n.Lhs) != 1 {
					continue
				}
				lhs := n.Lhs[0]
				if len(n.Lhs) > i {
					lhs = n.Lhs[i]
				}
				if obj := outer(lhs); obj != nil {
					sinks = append(sinks, mapSink{
						pos: n.Pos(), what: "append to " + obj.Name(), obj: obj,
					})
				}
			}
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if obj := outer(n.Lhs[0]); obj != nil {
					if b, isBasic := obj.Type().Underlying().(*types.Basic); isBasic && b.Info()&types.IsString != 0 {
						sinks = append(sinks, mapSink{
							pos: n.Pos(), what: "string build of " + obj.Name(), obj: obj,
						})
					}
				}
			}
		case *ast.CallExpr:
			if recv, m, ok := methodCall(pass, n); ok {
				switch m {
				case "WriteString", "WriteByte", "WriteRune", "Write":
					rt := namedType(pass.TypeOf(recv))
					if rt == "strings.Builder" || rt == "bytes.Buffer" {
						sinks = append(sinks, mapSink{
							pos: n.Pos(), what: m + " on " + exprString(recv), obj: outer(recv),
						})
					}
				}
				return true
			}
			if pkgPath, name, ok := pkgFuncCall(pass, file, n); ok && pkgPath == "fmt" &&
				(name == "Fprint" || name == "Fprintf" || name == "Fprintln" ||
					name == "Print" || name == "Printf" || name == "Println") {
				sinks = append(sinks, mapSink{pos: n.Pos(), what: "fmt." + name + " emission"})
			}
		}
		return true
	})
	return sinks
}

// sortedAfter reports whether, after the range statement, the
// function sorts the sink: any sort.* / slices.* call, or any
// function whose name starts with Sort/sort (project helpers like
// faults.SortByLengthDesc), referencing it.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rs *ast.RangeStmt, sink types.Object) bool {
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			if containsIdentObj(pass, arg, sink) {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

func isSortCall(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		if qual, isIdent := fun.X.(*ast.Ident); isIdent &&
			(qual.Name == "sort" || qual.Name == "slices") {
			return true
		}
	default:
		return false
	}
	return strings.HasPrefix(name, "Sort") || strings.HasPrefix(name, "sort")
}
