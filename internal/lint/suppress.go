package lint

import (
	"go/ast"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer string // "" means all analyzers
	reason   string
	line     int // the source line the directive governs
	file     string
}

// ignoreSet indexes directives by file and governed line.
type ignoreSet struct {
	byFileLine map[string]map[int]*ignoreDirective
}

// collectIgnores parses every //lint:ignore directive of the package.
// A directive governs the line it sits on; a directive on a line of
// its own governs the following line (the usual style for statements
// too long to share a line with a comment).
func collectIgnores(pkg *Package) *ignoreSet {
	set := &ignoreSet{byFileLine: make(map[string]map[int]*ignoreDirective)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d := parseIgnore(c)
				if d == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d.file = pos.Filename
				d.line = pos.Line
				if pos.Column == 1 || standsAlone(pkg, f, c) {
					// A full-line comment governs the next line.
					d.line = pos.Line + 1
				}
				lines := set.byFileLine[d.file]
				if lines == nil {
					lines = make(map[int]*ignoreDirective)
					set.byFileLine[d.file] = lines
				}
				lines[d.line] = d
			}
		}
	}
	return set
}

// standsAlone reports whether comment c is the only thing on its line
// (an indented directive above the governed statement).
func standsAlone(pkg *Package, f *ast.File, c *ast.Comment) bool {
	cLine := pkg.Fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		if _, ok := n.(*ast.File); ok {
			return true
		}
		start := pkg.Fset.Position(n.Pos()).Line
		end := pkg.Fset.Position(n.End()).Line
		if start > cLine || (end < cLine && end != 0) {
			return false // node entirely before/after the comment line
		}
		if start == cLine || end == cLine {
			switch n.(type) {
			case *ast.Comment, *ast.CommentGroup:
			default:
				// Some code shares the directive's line: it governs
				// that same line, not the next.
				if n.End() <= c.Pos() {
					alone = false
					return false
				}
			}
		}
		return true
	})
	return alone
}

func parseIgnore(c *ast.Comment) *ignoreDirective {
	text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
	if !ok {
		return nil
	}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return &ignoreDirective{reason: "(no reason given)"}
	}
	d := &ignoreDirective{analyzer: fields[0]}
	if len(fields) > 1 {
		d.reason = strings.Join(fields[1:], " ")
	} else {
		d.reason = "(no reason given)"
	}
	return d
}

// match reports whether a directive suppresses d, returning the
// recorded reason.
func (s *ignoreSet) match(d Diagnostic) (string, bool) {
	lines := s.byFileLine[d.File]
	if lines == nil {
		return "", false
	}
	dir := lines[d.Line]
	if dir == nil {
		return "", false
	}
	if dir.analyzer != "" && dir.analyzer != d.Analyzer {
		return "", false
	}
	return dir.reason, true
}

// telemetryAnnotated reports whether the source line at the given
// file:line, or the line directly above it, carries a
// //lint:telemetry annotation — the marker that a time.Now call site
// is observational only (spans, Elapsed fields, logs) and cannot
// influence generated tests, digests or journal replay.
func telemetryAnnotated(pkg *Package, file *ast.File, line int) bool {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, "//lint:telemetry") {
				continue
			}
			cl := pkg.Fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}
