package lint

import (
	"go/ast"
	"strings"
)

// AnalyzerFsyncDir polices the atomic-install idiom in the durable
// packages (journal, store): a file becomes durable only when the
// tmp-write + fsync + os.Rename sequence ends with an fsync of the
// parent directory — the rename itself lives in the directory entry,
// and a crash before the directory block reaches disk silently undoes
// it. The analyzer flags any os.Rename in a durable package that is
// not followed, later in the same function frame, by a call whose
// name marks the directory sync (the project convention is syncDir;
// any callee whose name contains "syncdir" counts, case-insensitive).
var AnalyzerFsyncDir = &Analyzer{
	Name: "fsyncdir",
	Doc:  "os.Rename on a durability path without a following parent-directory fsync",
	Run:  runFsyncDir,
}

func runFsyncDir(pass *Pass) {
	if !pass.Config.Durable(pass.Pkg) {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, isFunc := decl.(*ast.FuncDecl); isFunc && fd.Body != nil {
				fsyncDirFrame(pass, file, fd.Body)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if fl, isLit := n.(*ast.FuncLit); isLit && fl.Body != nil {
				fsyncDirFrame(pass, file, fl.Body)
			}
			return true
		})
	}
}

// fsyncDirFrame checks one function frame: every os.Rename in it must
// have a directory-sync call at a later position. Nested function
// literals are skipped — each is its own frame (a rename deferred into
// a literal is paired with the sync in that literal).
func fsyncDirFrame(pass *Pass, file *ast.File, body *ast.BlockStmt) {
	var renames []*ast.CallExpr
	var syncEnds []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, isLit := n.(*ast.FuncLit); isLit && fl != nil {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if pkgPath, name, ok := pkgFuncCall(pass, file, call); ok && pkgPath == "os" && name == "Rename" {
			renames = append(renames, call)
			return true
		}
		if isDirSyncCall(call) {
			syncEnds = append(syncEnds, call)
		}
		return true
	})
	for _, r := range renames {
		followed := false
		for _, s := range syncEnds {
			if s.Pos() > r.End() {
				followed = true
				break
			}
		}
		if !followed {
			pass.Reportf(r.Pos(),
				"os.Rename on the durability path is not followed by a parent-directory fsync: call syncDir(dir) after the rename, or the entry can vanish on crash")
		}
	}
}

// isDirSyncCall matches the directory-sync convention by callee name:
// syncDir, fsyncDir, SyncDir, d.syncDir, ...
func isDirSyncCall(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "syncdir")
}
