package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// The facts engine computes one Summary per function declaration and
// propagates it bottom-up over the strongly connected components of
// the call graph until a fixed point. The summary is a join
// semilattice — every field only ever grows (false -> true, sets grow,
// bitmasks accumulate) — so iteration inside an SCC terminates.
//
// Summaries carry provenance: the call site a fact was inherited
// through, so a diagnostic can print the whole propagation chain
// ("Submit calls enqueue, enqueue calls journal.Append, Append
// blocks") instead of a bare conclusion.
//
// Soundness limits (see DESIGN.md): calls through interfaces,
// function values and method values are opaque (their effects are
// missed); goroutine-launched code contributes no facts to its
// spawner; locks are tracked as classes (owner type + field), not
// instances, so two locks of the same class on different objects are
// not distinguished.

// ResourceKind classifies a value that must be released.
type ResourceKind int

// Resource kinds closeleak tracks.
const (
	NoResource ResourceKind = iota
	// ResBody is an *http.Response whose Body must be closed.
	ResBody
	// ResFile is an *os.File that must be closed.
	ResFile
	// ResTicker is a *time.Ticker that must be stopped.
	ResTicker
)

func (k ResourceKind) String() string {
	switch k {
	case ResBody:
		return "http.Response.Body"
	case ResFile:
		return "os.File"
	case ResTicker:
		return "time.Ticker"
	}
	return "none"
}

// releaseVerb is what the diagnostic tells the reader to call.
func (k ResourceKind) releaseVerb() string {
	if k == ResTicker {
		return "Stop"
	}
	return "Close"
}

// released is the past-tense form for messages.
func (k ResourceKind) released() string {
	if k == ResTicker {
		return "stopped"
	}
	return "closed"
}

// Acquire records how a function (possibly transitively) acquires a
// lock class.
type Acquire struct {
	// Pos is the Lock call (Via == nil) or the call site the
	// acquisition is inherited through.
	Pos token.Pos
	// Via is the call edge the fact came through; nil means the lock
	// is taken directly in this function.
	Via *CallSite
}

// Summary is the per-function fact record, the lattice element the
// SCC fixed point joins.
type Summary struct {
	// Blocking: the function may block indefinitely (channel op,
	// blocking select, time.Sleep, WaitGroup.Wait, network/exec call,
	// or a call to a blocking callee).
	Blocking    bool
	BlockingWhy string
	BlockingPos token.Pos
	// BlockingVia is the call edge blocking was inherited through; nil
	// when this function blocks directly.
	BlockingVia *CallSite

	// Acquires maps lock class -> how this function may acquire it
	// (directly or via a callee), on its synchronous path.
	Acquires map[string]*Acquire

	// CtxParams are the indices of context.Context parameters.
	CtxParams []int

	// TaintedReturn: some return value derives from a nondeterministic
	// source (unseeded math/rand, time.Now/Since, map iteration
	// order).
	TaintedReturn bool
	TaintWhy      string
	TaintPos      token.Pos
	TaintVia      *CallSite

	// ParamToReturn bit i: parameter i may flow into a return value
	// (coarse: any return).
	ParamToReturn uint64

	// Returns classifies each result that hands a freshly acquired
	// resource to the caller (ownership transfer).
	Returns []ResourceKind
	// ClosesParams bit i: parameter i's resource is released by this
	// function (directly or via a callee).
	ClosesParams uint64
}

// Facts is the module-wide fact base: the call graph with computed
// summaries plus the global lock-acquisition-order edges.
type Facts struct {
	Graph *CallGraph
	Cfg   *Config
	Fset  *token.FileSet

	// lockEdges: first witness per (from, to) lock-class pair, in
	// deterministic order.
	lockEdges []lockEdge
	edgeIndex map[[2]string]*lockEdge
}

// BuildFacts runs the interprocedural analysis over the loaded
// packages: intra-procedural walks, SCC computation, bottom-up
// fixed point, then the global lock-order edge set.
func BuildFacts(pkgs []*Package, cfg *Config) *Facts {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	f := &Facts{
		Graph:     buildCallGraph(pkgs),
		Cfg:       cfg,
		Fset:      fset,
		edgeIndex: make(map[[2]string]*lockEdge),
	}
	for _, n := range f.Graph.Nodes {
		fw := &factWalker{facts: f, node: n, pass: &Pass{Pkg: n.Pkg}}
		n.Summary.Acquires = make(map[string]*Acquire)
		n.Summary.CtxParams = ctxParamIndices(n)
		fw.walk()
	}
	f.Graph.computeSCCs()
	for _, comp := range f.Graph.SCCs {
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				if f.propagate(n) {
					changed = true
				}
			}
		}
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				if f.recomputeTaint(n) {
					changed = true
				}
			}
		}
	}
	f.collectLockEdges()
	return f
}

// ctxParamIndices finds the context.Context parameters of n.
func ctxParamIndices(n *FuncNode) []int {
	if n.Obj == nil {
		return nil
	}
	sig, isSig := n.Obj.Type().(*types.Signature)
	if !isSig {
		return nil
	}
	var out []int
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			out = append(out, i)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Intrinsic fact tables (keyed by go/types FullName).

// blockingStd names standard-library calls that may block
// indefinitely. Mutex operations are deliberately absent: critical
// sections are assumed short, and including them would make every
// lock user "blocking" for ctxflow.
var blockingStd = map[string]string{
	"time.Sleep":                      "time.Sleep",
	"(*sync.WaitGroup).Wait":          "WaitGroup.Wait",
	"(*sync.Cond).Wait":               "Cond.Wait",
	"(*net/http.Client).Do":           "http.Client.Do",
	"(*net/http.Client).Get":          "http.Client.Get",
	"(*net/http.Client).Post":         "http.Client.Post",
	"(*net/http.Client).PostForm":     "http.Client.PostForm",
	"(*net/http.Client).Head":         "http.Client.Head",
	"net/http.Get":                    "http.Get",
	"net/http.Post":                   "http.Post",
	"net/http.PostForm":               "http.PostForm",
	"net/http.Head":                   "http.Head",
	"net.Dial":                        "net.Dial",
	"net.DialTimeout":                 "net.DialTimeout",
	"net.Listen":                      "net.Listen",
	"(*os/exec.Cmd).Run":              "exec.Cmd.Run",
	"(*os/exec.Cmd).Wait":             "exec.Cmd.Wait",
	"(*os/exec.Cmd).Output":           "exec.Cmd.Output",
	"(*os/exec.Cmd).CombinedOutput":   "exec.Cmd.CombinedOutput",
	"(*net/http.Server).ListenAndServe": "http.Server.ListenAndServe",
	"net/http.ListenAndServe":         "http.ListenAndServe",
	"(*net/http.Server).Serve":        "http.Server.Serve",
}

// allocatorStd names standard-library calls whose first result is a
// fresh resource the caller must release.
var allocatorStd = map[string]ResourceKind{
	"net/http.Get":                ResBody,
	"net/http.Post":               ResBody,
	"net/http.PostForm":           ResBody,
	"net/http.Head":               ResBody,
	"(*net/http.Client).Do":       ResBody,
	"(*net/http.Client).Get":      ResBody,
	"(*net/http.Client).Post":     ResBody,
	"(*net/http.Client).PostForm": ResBody,
	"(*net/http.Client).Head":     ResBody,
	"os.Open":                     ResFile,
	"os.Create":                   ResFile,
	"os.OpenFile":                 ResFile,
	"os.CreateTemp":               ResFile,
	"time.NewTicker":              ResTicker,
}

// calleeFullName resolves a call's callee FullName via type info
// ("time.Sleep", "(*sync.WaitGroup).Wait"), or "".
func calleeFullName(pass *Pass, call *ast.CallExpr) string {
	if pass.Pkg.Info == nil {
		return ""
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if fn, isFn := pass.Pkg.Info.Uses[id].(*types.Func); isFn {
		return fn.FullName()
	}
	return ""
}

// nondetSource classifies a call as a nondeterminism source,
// returning a human-readable name.
func nondetSource(pass *Pass, file *ast.File, call *ast.CallExpr) (string, bool) {
	pkgPath, name, ok := pkgFuncCall(pass, file, call)
	if !ok {
		return "", false
	}
	switch pkgPath {
	case "math/rand", "math/rand/v2":
		if !randConstructors[name] {
			return "unseeded " + pkgPath + "." + name, true
		}
	case "time":
		if name == "Now" || name == "Since" {
			return "time." + name, true
		}
	}
	return "", false
}

// ---------------------------------------------------------------------------
// Lock classes.

// lockClassKey names the lock class a Lock/Unlock receiver belongs
// to: the owning named type plus field ("repro/internal/engine.Engine.mu"),
// a package-level variable ("repro/internal/foo.registryMu"), or a
// function-scoped rendering for locals.
func lockClassKey(pass *Pass, owner FuncKey, recv ast.Expr) string {
	switch e := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		if base := namedType(pass.TypeOf(e.X)); base != "" {
			return base + "." + e.Sel.Name
		}
		if id, isIdent := e.X.(*ast.Ident); isIdent {
			if obj := pass.ObjectOf(id); obj != nil {
				if pn, isPkg := obj.(*types.PkgName); isPkg {
					return pn.Imported().Path() + "." + e.Sel.Name
				}
			}
		}
		return exprString(recv)
	case *ast.Ident:
		if obj := pass.ObjectOf(e); obj != nil && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + obj.Name()
			}
			if base := namedType(obj.Type()); base != "" && base != "sync.Mutex" && base != "sync.RWMutex" {
				// Embedded mutex: e.Lock() on the owning struct.
				return base
			}
		}
		return string(owner) + "/" + e.Name // function-local
	}
	return exprString(recv)
}

// ---------------------------------------------------------------------------
// Intra-procedural walk: locks held, blocking witnesses, call sites.

type factWalker struct {
	facts *Facts
	node  *FuncNode
	pass  *Pass
	// async: walking a goroutine-launched body — facts recorded there
	// stay local (Async call sites, no ownAcquires/blocking).
	async bool
}

func (fw *factWalker) walk() {
	held := make(lockState)
	fw.stmts(fw.node.Decl.Body.List, held)
}

func (fw *factWalker) heldKeys(held lockState) []string {
	if len(held) == 0 {
		return nil
	}
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (fw *factWalker) stmts(list []ast.Stmt, held lockState) {
	for _, s := range list {
		fw.stmt(s, held)
	}
}

func (fw *factWalker) stmt(stmt ast.Stmt, held lockState) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, isCall := s.X.(*ast.CallExpr); isCall {
			if recv, op, ok := mutexOp(fw.pass, call); ok {
				key := lockClassKey(fw.pass, fw.node.Key, recv)
				switch op {
				case "Lock", "RLock":
					for _, from := range fw.heldKeys(held) {
						if from != key {
							fw.node.lockEdges = append(fw.node.lockEdges,
								lockEdge{from: from, to: key, pos: call.Pos(), node: fw.node})
						}
					}
					if !fw.async {
						if _, seen := fw.node.ownAcquires[key]; !seen {
							fw.node.ownAcquires[key] = call.Pos()
						}
					}
					held[key] = call.Pos()
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				return
			}
		}
		fw.scan(s.X, held)
	case *ast.DeferStmt:
		if _, op, ok := mutexOp(fw.pass, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return // held until return; keep it in the set
		}
		fw.scan(s.Call, held)
	case *ast.SendStmt:
		fw.blockingWitness(s.Pos(), "channel send")
		fw.scan(s.Chan, held)
		fw.scan(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			fw.scan(e, held)
		}
		for _, e := range s.Lhs {
			fw.scan(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			fw.scan(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			fw.stmt(s.Init, held)
		}
		fw.scan(s.Cond, held)
		fw.stmts(s.Body.List, held.clone())
		if s.Else != nil {
			fw.stmt(s.Else, held.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			fw.stmt(s.Init, held)
		}
		if s.Cond != nil {
			fw.scan(s.Cond, held)
		}
		fw.stmts(s.Body.List, held.clone())
	case *ast.RangeStmt:
		fw.scan(s.X, held)
		fw.stmts(s.Body.List, held.clone())
	case *ast.BlockStmt:
		fw.stmts(s.List, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			fw.stmt(s.Init, held)
		}
		if s.Tag != nil {
			fw.scan(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if c, isCase := cc.(*ast.CaseClause); isCase {
				fw.stmts(c.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if c, isCase := cc.(*ast.CaseClause); isCase {
				fw.stmts(c.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, cc := range s.Body.List {
			if c, isComm := cc.(*ast.CommClause); isComm && c.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			fw.blockingWitness(s.Pos(), "blocking select")
		}
		for _, cc := range s.Body.List {
			if c, isComm := cc.(*ast.CommClause); isComm {
				fw.stmts(c.Body, held.clone())
			}
		}
	case *ast.GoStmt:
		// The goroutine's body runs outside this frame: walk it in
		// async mode (its own lock nesting is recorded; nothing
		// propagates to this function's summary).
		for _, a := range s.Call.Args {
			fw.scan(a, held)
		}
		if lit, isLit := s.Call.Fun.(*ast.FuncLit); isLit {
			sub := &factWalker{facts: fw.facts, node: fw.node, pass: fw.pass, async: true}
			sub.stmts(lit.Body.List, make(lockState))
		} else if callee := fw.facts.Graph.resolveCallee(fw.pass.Pkg, s.Call); callee != nil {
			fw.node.Calls = append(fw.node.Calls, &CallSite{
				Caller: fw.node, Callee: callee, Pos: s.Call.Pos(), Call: s.Call, Async: true,
			})
		}
	case *ast.LabeledStmt:
		fw.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		fw.scan(s, held)
	case *ast.IncDecStmt:
		fw.scan(s.X, held)
	}
}

// scan inspects an expression subtree for call sites, blocking
// operations and nested function literals.
func (fw *factWalker) scan(root ast.Node, held lockState) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A non-go literal may run synchronously (deferred,
			// immediately invoked, passed to retry.Do): its calls count
			// for the enclosing summary, but with an empty held-set —
			// when it actually runs is unknown.
			sub := &factWalker{facts: fw.facts, node: fw.node, pass: fw.pass, async: fw.async}
			sub.stmts(n.Body.List, make(lockState))
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				fw.blockingWitness(n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			// reached via DeclStmt scan; handled by stmt() elsewhere
		case *ast.CallExpr:
			fw.callSite(n, held)
		}
		return true
	})
}

// callSite records one call expression: a resolved module-local edge
// and/or an intrinsic blocking witness.
func (fw *factWalker) callSite(call *ast.CallExpr, held lockState) {
	if full := calleeFullName(fw.pass, call); full != "" {
		if why, isBlocking := blockingStd[full]; isBlocking {
			fw.blockingWitness(call.Pos(), why)
		}
	}
	if callee := fw.facts.Graph.resolveCallee(fw.pass.Pkg, call); callee != nil {
		fw.node.Calls = append(fw.node.Calls, &CallSite{
			Caller: fw.node, Callee: callee, Pos: call.Pos(), Call: call,
			Held: fw.heldKeys(held), Async: fw.async,
		})
	}
}

func (fw *factWalker) blockingWitness(pos token.Pos, why string) {
	if fw.async {
		return
	}
	s := &fw.node.Summary
	if !s.Blocking {
		s.Blocking = true
		s.BlockingWhy = why
		s.BlockingPos = pos
	}
}

// ---------------------------------------------------------------------------
// Fixed point: blocking, acquires, resources.

// propagate joins callee summaries into n; reports whether n changed.
func (f *Facts) propagate(n *FuncNode) bool {
	changed := false
	s := &n.Summary
	for k, pos := range n.ownAcquires {
		if _, seen := s.Acquires[k]; !seen {
			s.Acquires[k] = &Acquire{Pos: pos}
			changed = true
		}
	}
	for _, cs := range n.Calls {
		if cs.Async {
			continue
		}
		cal := &cs.Callee.Summary
		if cal.Blocking && !s.Blocking {
			s.Blocking = true
			s.BlockingWhy = "calls " + shortKey(cs.Callee.Key)
			s.BlockingPos = cs.Pos
			s.BlockingVia = cs
			changed = true
		}
		for k := range cal.Acquires {
			if _, seen := s.Acquires[k]; !seen {
				s.Acquires[k] = &Acquire{Pos: cs.Pos, Via: cs}
				changed = true
			}
		}
	}
	if f.recomputeResources(n) {
		changed = true
	}
	return changed
}

// recomputeResources recomputes the resource half of the summary
// (fresh-resource returns, closed parameters) against the current
// callee summaries.
func (f *Facts) recomputeResources(n *FuncNode) bool {
	pass := &Pass{Pkg: n.Pkg}
	// Fresh resources: vars assigned from allocator calls.
	fresh := make(map[types.Object]ResourceKind)
	paramObjs := funcParamObjs(pass, n.Decl)
	closes := n.Summary.ClosesParams
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			if len(node.Rhs) == 1 {
				if call, isCall := node.Rhs[0].(*ast.CallExpr); isCall {
					kinds := f.allocates(pass, call)
					for i, kind := range kinds {
						if kind == NoResource || i >= len(node.Lhs) {
							continue
						}
						if id, isIdent := node.Lhs[i].(*ast.Ident); isIdent {
							if obj := pass.ObjectOf(id); obj != nil {
								fresh[obj] = kind
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			// p.Close() / p.Stop() / p.Body.Close() on a parameter.
			if recv, name, ok := methodCall(pass, node); ok && (name == "Close" || name == "Stop") {
				base := recv
				if se, isSel := recv.(*ast.SelectorExpr); isSel && se.Sel.Name == "Body" {
					base = se.X
				}
				if id, isIdent := ast.Unparen(base).(*ast.Ident); isIdent {
					if obj := pass.ObjectOf(id); obj != nil {
						for i, p := range paramObjs {
							if p == obj {
								closes |= 1 << i
							}
						}
					}
				}
			}
			// Parameter handed to a callee that closes it.
			if callee := f.Graph.resolveCallee(pass.Pkg, node); callee != nil && callee.Summary.ClosesParams != 0 {
				for ai, arg := range node.Args {
					if ai >= 64 || callee.Summary.ClosesParams&(1<<ai) == 0 {
						continue
					}
					if id, isIdent := ast.Unparen(arg).(*ast.Ident); isIdent {
						if obj := pass.ObjectOf(id); obj != nil {
							for i, p := range paramObjs {
								if p == obj {
									closes |= 1 << i
								}
							}
						}
					}
				}
			}
		}
		return true
	})
	// Returns that hand a fresh resource to the caller.
	var returns []ResourceKind
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if _, isLit := node.(*ast.FuncLit); isLit {
			return false
		}
		ret, isRet := node.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		for i, res := range ret.Results {
			kind := NoResource
			switch e := ast.Unparen(res).(type) {
			case *ast.CallExpr:
				if kinds := f.allocates(pass, e); i < len(ret.Results) && len(kinds) > 0 {
					kind = kinds[0]
				}
			case *ast.Ident:
				if obj := pass.ObjectOf(e); obj != nil {
					kind = fresh[obj]
				}
			}
			if kind != NoResource {
				for len(returns) <= i {
					returns = append(returns, NoResource)
				}
				if returns[i] == NoResource {
					returns[i] = kind
				}
			}
		}
		return true
	})
	changed := closes != n.Summary.ClosesParams || len(returns) != len(n.Summary.Returns)
	if !changed {
		for i := range returns {
			if returns[i] != n.Summary.Returns[i] {
				changed = true
				break
			}
		}
	}
	n.Summary.ClosesParams = closes
	n.Summary.Returns = returns
	return changed
}

// allocates classifies a call's results as fresh resources: one kind
// per result (empty when none).
func (f *Facts) allocates(pass *Pass, call *ast.CallExpr) []ResourceKind {
	if callee := f.Graph.resolveCallee(pass.Pkg, call); callee != nil {
		return callee.Summary.Returns
	}
	if full := calleeFullName(pass, call); full != "" {
		if kind, ok := allocatorStd[full]; ok {
			return []ResourceKind{kind}
		}
	}
	return nil
}

// funcParamObjs returns the parameter objects of fd in order.
func funcParamObjs(pass *Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, pass.ObjectOf(name))
		}
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed param still occupies an index
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Taint.

// taintMark is the abstract value of the taint analysis: a
// nondeterministic-source component with provenance, plus a bitmask
// of originating parameters.
type taintMark struct {
	src    bool
	why    string
	pos    token.Pos
	via    *CallSite
	params uint64
}

func (m taintMark) union(o taintMark) taintMark {
	if o.src && !m.src {
		m.src, m.why, m.pos, m.via = true, o.why, o.pos, o.via
	}
	m.params |= o.params
	return m
}

func (m taintMark) empty() bool { return !m.src && m.params == 0 }

// recomputeTaint runs the intra-procedural taint fixed point for n
// against current callee summaries; reports whether n's summary
// changed.
func (f *Facts) recomputeTaint(n *FuncNode) bool {
	pass := &Pass{Pkg: n.Pkg}
	env := make(map[types.Object]taintMark)
	// Parameters seed their own origin bit.
	for i, p := range funcParamObjs(pass, n.Decl) {
		if p != nil && i < 64 {
			env[p] = taintMark{params: 1 << i}
		}
	}
	// Map-iteration-order taint: ordered sinks of a range-over-map
	// with no later sort are nondeterministically ordered.
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		rs, isRange := node.(*ast.RangeStmt)
		if !isRange {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, sink := range orderedSinks(pass, n.File, rs) {
			if sink.obj == nil || sortedAfter(pass, n.Decl.Body, rs, sink.obj) {
				continue
			}
			env[sink.obj] = env[sink.obj].union(taintMark{
				src: true, why: "map iteration order", pos: sink.pos,
			})
		}
		return true
	})
	tc := &taintCtx{facts: f, node: n, pass: pass, env: env}
	for round := 0; round < 16; round++ {
		if !tc.flowOnce(n.Decl.Body) {
			break
		}
	}
	// Join return statements into the summary.
	sum := &n.Summary
	changed := false
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if _, isLit := node.(*ast.FuncLit); isLit {
			return false
		}
		ret, isRet := node.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		for _, res := range ret.Results {
			m := tc.mark(res)
			if m.src && !sum.TaintedReturn {
				sum.TaintedReturn = true
				sum.TaintWhy, sum.TaintPos, sum.TaintVia = m.why, m.pos, m.via
				changed = true
			}
			if m.params&^sum.ParamToReturn != 0 {
				sum.ParamToReturn |= m.params
				changed = true
			}
		}
		return true
	})
	n.taintedVars = env
	return changed
}

// taintCtx evaluates expression marks against an environment.
type taintCtx struct {
	facts *Facts
	node  *FuncNode
	pass  *Pass
	env   map[types.Object]taintMark
}

// flowOnce pushes marks through every assignment once; reports
// whether the environment grew.
func (tc *taintCtx) flowOnce(body *ast.BlockStmt) bool {
	changed := false
	join := func(lhs ast.Expr, m taintMark) {
		if m.empty() {
			return
		}
		base := lhs
		for {
			switch e := ast.Unparen(base).(type) {
			case *ast.SelectorExpr:
				base = e.X
				continue
			case *ast.IndexExpr:
				base = e.X
				continue
			case *ast.StarExpr:
				base = e.X
				continue
			}
			break
		}
		id, isIdent := ast.Unparen(base).(*ast.Ident)
		if !isIdent || id.Name == "_" {
			return
		}
		obj := tc.pass.ObjectOf(id)
		if obj == nil {
			return
		}
		joined := tc.env[obj].union(m)
		if joined != tc.env[obj] {
			tc.env[obj] = joined
			changed = true
		}
	}
	ast.Inspect(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			if len(node.Rhs) == 1 && len(node.Lhs) > 1 {
				m := tc.mark(node.Rhs[0])
				for _, lhs := range node.Lhs {
					join(lhs, m)
				}
				return true
			}
			for i, rhs := range node.Rhs {
				if i < len(node.Lhs) {
					join(node.Lhs[i], tc.mark(rhs))
				}
			}
		case *ast.RangeStmt:
			m := tc.mark(node.X)
			if node.Key != nil {
				join(node.Key, m)
			}
			if node.Value != nil {
				join(node.Value, m)
			}
		}
		return true
	})
	return changed
}

// mark computes the taint of one expression.
func (tc *taintCtx) mark(e ast.Expr) taintMark {
	switch e := e.(type) {
	case nil:
		return taintMark{}
	case *ast.Ident:
		if obj := tc.pass.ObjectOf(e); obj != nil {
			return tc.env[obj]
		}
		return taintMark{}
	case *ast.ParenExpr:
		return tc.mark(e.X)
	case *ast.SelectorExpr:
		return tc.mark(e.X) // field of a tainted struct is tainted
	case *ast.StarExpr:
		return tc.mark(e.X)
	case *ast.UnaryExpr:
		return tc.mark(e.X)
	case *ast.BinaryExpr:
		return tc.mark(e.X).union(tc.mark(e.Y))
	case *ast.IndexExpr:
		return tc.mark(e.X).union(tc.mark(e.Index))
	case *ast.SliceExpr:
		return tc.mark(e.X)
	case *ast.TypeAssertExpr:
		return tc.mark(e.X)
	case *ast.KeyValueExpr:
		return tc.mark(e.Value)
	case *ast.CompositeLit:
		var m taintMark
		for _, el := range e.Elts {
			m = m.union(tc.mark(el))
		}
		return m
	case *ast.CallExpr:
		return tc.callMark(e)
	case *ast.FuncLit, *ast.BasicLit:
		return taintMark{}
	}
	return taintMark{}
}

func (tc *taintCtx) callMark(call *ast.CallExpr) taintMark {
	// Type conversion: the mark of the operand.
	if tc.pass.Pkg.Info != nil {
		if tv, ok := tc.pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			return tc.mark(call.Args[0])
		}
	}
	// Builtins.
	if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent {
		switch id.Name {
		case "append", "copy", "min", "max":
			var m taintMark
			for _, a := range call.Args {
				m = m.union(tc.mark(a))
			}
			return m
		case "len", "cap", "make", "new":
			return taintMark{}
		}
	}
	// Intrinsic nondeterminism source.
	if why, isSrc := nondetSource(tc.pass, tc.node.File, call); isSrc {
		return taintMark{src: true, why: why, pos: call.Pos()}
	}
	// Resolved module-local callee: use its summary.
	if callee := tc.facts.Graph.resolveCallee(tc.pass.Pkg, call); callee != nil {
		cs := &CallSite{Caller: tc.node, Callee: callee, Pos: call.Pos(), Call: call}
		var m taintMark
		if callee.Summary.TaintedReturn {
			m = m.union(taintMark{src: true, why: "calls " + shortKey(callee.Key), pos: call.Pos(), via: cs})
		}
		for i, arg := range call.Args {
			if i < 64 && callee.Summary.ParamToReturn&(1<<i) != 0 {
				am := tc.mark(arg)
				if am.src {
					m = m.union(am)
				}
				m.params |= am.params
			}
		}
		return m
	}
	// External call: assume results depend on the arguments
	// (fmt.Sprintf, strconv, strings.Join, hash writers...).
	var m taintMark
	for _, a := range call.Args {
		m = m.union(tc.mark(a))
	}
	if se, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		// Method call: the receiver contributes too (h.Sum(nil)).
		m = m.union(tc.mark(se.X))
	}
	return m
}

// ---------------------------------------------------------------------------
// Global lock-order edges.

// collectLockEdges merges intra-procedural edges with the
// interprocedural ones (call made while holding A, callee acquires
// B), keeping the first witness per (from, to) pair in deterministic
// node order.
func (f *Facts) collectLockEdges() {
	add := func(e lockEdge) {
		k := [2]string{e.from, e.to}
		if _, seen := f.edgeIndex[k]; seen {
			return
		}
		ecopy := e
		f.edgeIndex[k] = &ecopy
		f.lockEdges = append(f.lockEdges, ecopy)
	}
	for _, n := range f.Graph.Nodes {
		if !f.Cfg.LockOrdered(n.Pkg) {
			continue
		}
		for _, e := range n.lockEdges {
			add(e)
		}
		for _, cs := range n.Calls {
			if cs.Async || len(cs.Held) == 0 {
				continue
			}
			for to := range cs.Callee.Summary.Acquires {
				for _, from := range cs.Held {
					if from != to {
						add(lockEdge{from: from, to: to, pos: cs.Pos, node: n, via: cs})
					}
				}
			}
		}
	}
}

// LockEdges returns the global acquisition-order edge set (first
// witness per ordered pair), deterministic.
func (f *Facts) LockEdges() []lockEdge { return f.lockEdges }

// ---------------------------------------------------------------------------
// Provenance chains.

// shortKey strips the module path prefix for readable messages:
// "(*repro/internal/engine.Engine).Submit" -> "(*engine.Engine).Submit".
func shortKey(k FuncKey) string {
	s := string(k)
	s = strings.ReplaceAll(s, "repro/internal/", "")
	s = strings.ReplaceAll(s, "repro/", "")
	return s
}

func (f *Facts) frame(pos token.Pos, fn FuncKey, note string) ChainFrame {
	p := f.Fset.Position(pos)
	return ChainFrame{Func: shortKey(fn), File: p.Filename, Line: p.Line, Note: note}
}

// BlockingChain explains why n blocks: the call-site frames down to
// the intrinsic blocking operation.
func (f *Facts) BlockingChain(n *FuncNode) []ChainFrame {
	var chain []ChainFrame
	seen := make(map[*FuncNode]bool)
	for n != nil && !seen[n] {
		seen[n] = true
		s := n.Summary
		if s.BlockingVia == nil {
			chain = append(chain, f.frame(s.BlockingPos, n.Key, s.BlockingWhy))
			break
		}
		chain = append(chain, f.frame(s.BlockingPos, n.Key, "calls "+shortKey(s.BlockingVia.Callee.Key)))
		n = s.BlockingVia.Callee
	}
	return chain
}

// AcquireChain explains how n comes to acquire lock class key.
func (f *Facts) AcquireChain(n *FuncNode, key string) []ChainFrame {
	var chain []ChainFrame
	seen := make(map[*FuncNode]bool)
	for n != nil && !seen[n] {
		seen[n] = true
		acq := n.Summary.Acquires[key]
		if acq == nil {
			break
		}
		if acq.Via == nil {
			chain = append(chain, f.frame(acq.Pos, n.Key, "acquires "+shortLock(key)))
			break
		}
		chain = append(chain, f.frame(acq.Pos, n.Key, "calls "+shortKey(acq.Via.Callee.Key)))
		n = acq.Via.Callee
	}
	return chain
}

// TaintChain explains why n's return value is nondeterministic.
func (f *Facts) TaintChain(n *FuncNode) []ChainFrame {
	var chain []ChainFrame
	seen := make(map[*FuncNode]bool)
	for n != nil && !seen[n] {
		seen[n] = true
		s := n.Summary
		if s.TaintVia == nil {
			chain = append(chain, f.frame(s.TaintPos, n.Key, s.TaintWhy))
			break
		}
		chain = append(chain, f.frame(s.TaintPos, n.Key, "calls "+shortKey(s.TaintVia.Callee.Key)))
		n = s.TaintVia.Callee
	}
	return chain
}

// markChain renders the provenance of one taint mark computed inside
// owner.
func (f *Facts) markChain(owner *FuncNode, m taintMark) []ChainFrame {
	if !m.src {
		return nil
	}
	if m.via == nil {
		return []ChainFrame{f.frame(m.pos, owner.Key, m.why)}
	}
	chain := []ChainFrame{f.frame(m.pos, owner.Key, "calls "+shortKey(m.via.Callee.Key))}
	return append(chain, f.TaintChain(m.via.Callee)...)
}

// shortLock trims lock-class names for messages.
func shortLock(key string) string {
	return strings.ReplaceAll(key, "repro/internal/", "")
}

// ---------------------------------------------------------------------------
// Facts dump (pdflint -facts).

// Dump writes every function summary in deterministic order — the
// debugging view behind `pdflint -facts`.
func (f *Facts) Dump(w io.Writer, root string) {
	for _, n := range f.Graph.Nodes {
		s := n.Summary
		interesting := s.Blocking || len(s.Acquires) > 0 || s.TaintedReturn ||
			len(s.CtxParams) > 0 || s.ClosesParams != 0 || len(s.Returns) > 0
		if !interesting {
			continue
		}
		pos := f.Fset.Position(n.Decl.Pos())
		fmt.Fprintf(w, "%s\n  at %s:%d\n", shortKey(n.Key), relPath(root, pos.Filename), pos.Line)
		if s.Blocking {
			fmt.Fprintf(w, "  blocking: %s\n", s.BlockingWhy)
		}
		if len(s.Acquires) > 0 {
			keys := make([]string, 0, len(s.Acquires))
			for k := range s.Acquires {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for i := range keys {
				keys[i] = shortLock(keys[i])
			}
			fmt.Fprintf(w, "  acquires: %s\n", strings.Join(keys, ", "))
		}
		if len(s.CtxParams) > 0 {
			fmt.Fprintf(w, "  ctx params: %v\n", s.CtxParams)
		}
		if s.TaintedReturn {
			fmt.Fprintf(w, "  tainted return: %s\n", s.TaintWhy)
		}
		if s.ParamToReturn != 0 {
			fmt.Fprintf(w, "  param->return mask: %#x\n", s.ParamToReturn)
		}
		for i, kind := range s.Returns {
			if kind != NoResource {
				fmt.Fprintf(w, "  returns fresh %s (result %d)\n", kind, i)
			}
		}
		if s.ClosesParams != 0 {
			fmt.Fprintf(w, "  closes params mask: %#x\n", s.ClosesParams)
		}
	}
}

// ConcurrentPackages returns the import paths of loaded packages that
// bear concurrency — a go statement, channel operation, select, or a
// sync.Mutex/RWMutex/WaitGroup use — derived from the parsed syntax.
// `make race` uses this (via pdflint -concurrent) so new concurrent
// packages cannot silently skip the race detector.
func ConcurrentPackages(pkgs []*Package) []string {
	var out []string
	for _, pkg := range pkgs {
		if strings.Contains(pkg.PkgPath, "/testdata/") {
			continue
		}
		found := false
		for _, file := range pkg.Files {
			if found {
				break
			}
			ast.Inspect(file, func(n ast.Node) bool {
				if found {
					return false
				}
				switch n := n.(type) {
				case *ast.GoStmt, *ast.SendStmt, *ast.SelectStmt, *ast.ChanType:
					found = true
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						found = true
					}
				case *ast.SelectorExpr:
					if id, isIdent := n.X.(*ast.Ident); isIdent && id.Name == "sync" {
						switch n.Sel.Name {
						case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Map":
							found = true
						}
					}
				}
				return !found
			})
		}
		if found {
			out = append(out, pkg.PkgPath)
		}
	}
	sort.Strings(out)
	return out
}
