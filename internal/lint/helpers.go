package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// pkgFuncCall resolves call to a package-level function, returning
// the defining package's import path and the function name. It
// prefers type information and falls back to the file's import table
// when the checker could not resolve the callee (partial loads), so
// determinism findings survive type errors elsewhere in the package.
func pkgFuncCall(pass *Pass, file *ast.File, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	se, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	if obj := pass.ObjectOf(se.Sel); obj != nil {
		fn, isFn := obj.(*types.Func)
		if !isFn || fn.Pkg() == nil {
			return "", "", false
		}
		if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
			return "", "", false // method, not package-level
		}
		return fn.Pkg().Path(), fn.Name(), true
	}
	// Fallback: syntactic match against the import table.
	id, isIdent := se.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	if path, found := importPathFor(file, id.Name); found {
		return path, se.Sel.Name, true
	}
	return "", "", false
}

// importPathFor maps a package qualifier used in file to its import
// path ("rand" -> "math/rand"), honoring aliases.
func importPathFor(file *ast.File, qualifier string) (string, bool) {
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "_" || name == "." {
				continue
			}
		} else {
			name = path
			if i := strings.LastIndex(name, "/"); i >= 0 {
				name = name[i+1:]
			}
		}
		if name == qualifier {
			return path, true
		}
	}
	return "", false
}

// methodCall decomposes call into (receiver expr, method name). ok is
// false for anything that is not x.M(...) with a non-package x.
func methodCall(pass *Pass, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	se, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	// x.M where x denotes an imported package is a package function.
	if id, isIdent := se.X.(*ast.Ident); isIdent {
		if obj := pass.ObjectOf(id); obj != nil {
			if _, isPkg := obj.(*types.PkgName); isPkg {
				return nil, "", false
			}
		}
	}
	return se.X, se.Sel.Name, true
}

// namedType returns the path.Name of t's core named type, unwrapping
// pointers ("sync.Mutex", "strings.Builder"), or "".
func namedType(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// recvTypeIs reports whether the method call receiver has the named
// type (e.g. "sync.WaitGroup"), either directly or through an
// embedded field (resolved via the selection).
func recvTypeIs(pass *Pass, call *ast.CallExpr, want string) bool {
	se, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || pass.Pkg.Info == nil {
		return false
	}
	if sel, found := pass.Pkg.Info.Selections[se]; found {
		if fn, isFn := sel.Obj().(*types.Func); isFn {
			if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
				if namedType(sig.Recv().Type()) == want {
					return true
				}
			}
		}
	}
	return namedType(pass.TypeOf(se.X)) == want
}

// exprString renders a (small) expression for receiver identity and
// messages: "e.mu", "c.cache.mu". Falls back to "?" on exotic forms.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	case *ast.UnaryExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	}
	return "?"
}

// funcBodies yields every function body of the file — declarations
// and function literals — exactly once, with literals visited as
// independent functions (a literal's body is analyzed in its own
// frame, not its enclosing function's).
func funcBodies(file *ast.File, visit func(name string, body *ast.BlockStmt)) {
	for _, decl := range file.Decls {
		fd, isFunc := decl.(*ast.FuncDecl)
		if !isFunc || fd.Body == nil {
			continue
		}
		visit(fd.Name.Name, fd.Body)
	}
	ast.Inspect(file, func(n ast.Node) bool {
		if fl, isLit := n.(*ast.FuncLit); isLit && fl.Body != nil {
			visit("func literal", fl.Body)
		}
		return true
	})
}

// containsIdentObj reports whether the subtree contains an identifier
// resolving to obj (used to find "the sink is sorted later").
func containsIdentObj(pass *Pass, root ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, isIdent := n.(*ast.Ident); isIdent {
			if pass.ObjectOf(id) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
