package lint

import (
	"sort"
	"strings"
)

// AnalyzerLockOrder detects potential AB/BA deadlocks: it assembles
// the global lock-acquisition-order graph — an edge A→B whenever some
// synchronous path acquires lock class B while holding A, whether the
// two Lock calls sit in the same function or B is taken three calls
// deep — and reports every cycle, naming the witness chain for each
// direction. Lock classes are (owner type, field) pairs, so two
// instances of the same class are conflated (a soundness/precision
// trade documented in DESIGN.md); goroutine-launched code contributes
// its own intra-goroutine nesting but a `go` call under a held lock
// does not export the spawner's held-set.
var AnalyzerLockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "global lock-acquisition-order cycles (potential AB/BA deadlock) across call chains",
	RunModule: runLockOrder,
}

func runLockOrder(mp *ModulePass) {
	edges := mp.Facts.LockEdges()
	adj := make(map[string][]*lockEdge)
	for i := range edges {
		e := &edges[i]
		adj[e.from] = append(adj[e.from], e)
	}
	seen := make(map[string]bool) // canonical cycle -> reported
	// Deterministic order: edges are already first-witness ordered.
	for i := range edges {
		e := &edges[i]
		path := cyclePath(adj, e.to, e.from)
		if path == nil {
			continue
		}
		cycle := append([]*lockEdge{e}, path...)
		key := canonicalCycle(cycle)
		if seen[key] {
			continue
		}
		seen[key] = true
		mp.Report(cycle[0].pos, mp.cycleChain(cycle),
			"lock order cycle: %s — acquisition order differs across paths; potential deadlock",
			describeCycle(cycle))
	}
}

// cyclePath finds a path from -> ... -> to over the edge set (DFS,
// deterministic edge order), excluding the trivial empty path.
func cyclePath(adj map[string][]*lockEdge, from, to string) []*lockEdge {
	type frame struct {
		node string
		ei   int
	}
	visited := map[string]bool{from: true}
	var stack []frame
	var path []*lockEdge
	stack = append(stack, frame{node: from})
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.node == to {
			return path
		}
		advanced := false
		for fr.ei < len(adj[fr.node]) {
			e := adj[fr.node][fr.ei]
			fr.ei++
			if visited[e.to] && e.to != to {
				continue
			}
			if e.to == to {
				return append(path, e)
			}
			visited[e.to] = true
			path = append(path, e)
			stack = append(stack, frame{node: e.to})
			advanced = true
			break
		}
		if !advanced {
			stack = stack[:len(stack)-1]
			if len(path) > 0 {
				path = path[:len(path)-1]
			}
		}
	}
	return nil
}

// canonicalCycle keys a cycle independent of its starting edge.
func canonicalCycle(cycle []*lockEdge) string {
	classes := make([]string, 0, len(cycle))
	for _, e := range cycle {
		classes = append(classes, e.from)
	}
	sort.Strings(classes)
	return strings.Join(classes, "→")
}

// describeCycle renders "A → B (pkg.Fn) → A (pkg.Gn)".
func describeCycle(cycle []*lockEdge) string {
	var b strings.Builder
	b.WriteString(shortLock(cycle[0].from))
	for _, e := range cycle {
		b.WriteString(" → ")
		b.WriteString(shortLock(e.to))
		b.WriteString(" (in ")
		b.WriteString(shortKey(e.node.Key))
		b.WriteString(")")
	}
	return b.String()
}

// cycleChain renders every edge of the cycle as provenance frames;
// edges imported through a call site expand to the callee's
// acquisition chain.
func (mp *ModulePass) cycleChain(cycle []*lockEdge) []ChainFrame {
	var chain []ChainFrame
	for _, e := range cycle {
		note := "acquires " + shortLock(e.to) + " while holding " + shortLock(e.from)
		chain = append(chain, mp.Facts.frame(e.pos, e.node.Key, note))
		if e.via != nil {
			chain = append(chain, mp.Facts.AcquireChain(e.via.Callee, e.to)...)
		}
	}
	return chain
}
