// Package metricnamefix is the pdflint fixture for the metricname
// analyzer: obs registration sites need constant-foldable,
// grammar-conforming metric and label names.
package metricnamefix

import "repro/internal/obs"

const prefix = "pdfd_fixture"

// Good registers well-formed constant names (including constant
// folding across idents and concatenation).
func Good() *obs.Registry {
	reg := obs.NewRegistry()
	reg.MustRegister(
		obs.NewCounterVec(prefix+"_requests_total", "Requests.", "route"),
		obs.NewHistogram("pdfd_fixture_latency_seconds", "Latency.", obs.DefBuckets),
		obs.NewGaugeFunc("pdfd_fixture:queue_depth", "Depth.", func() float64 { return 0 }),
		obs.NewGaugeVec(prefix+"_backend_up", "Backend health.", "backend"),
	)
	return reg
}

// BadGrammar uses names and labels outside the text-format grammar.
func BadGrammar() {
	obs.NewCounterVec("pdfd-fixture-total", "Dashes are invalid.", "route")              // want `metric name "pdfd-fixture-total" does not match the Prometheus grammar`
	obs.NewHistogram("0starts_with_digit", "Digit start is invalid.", obs.DefBuckets)    // want `metric name "0starts_with_digit" does not match the Prometheus grammar`
	obs.NewCounterVec("pdfd_fixture_bad_label_total", "Label with colon.", "route:name") // want `label name "route:name" does not match the Prometheus grammar`
	obs.NewGaugeVec("pdfd fixture gauge", "Spaces are invalid.", "backend-id")           // want `metric name "pdfd fixture gauge" does not match the Prometheus grammar` `label name "backend-id" does not match the Prometheus grammar`
}

// BadDynamic assembles the name at runtime, so the exposition cannot
// be proven well-formed statically.
func BadDynamic(kind string) {
	obs.NewCounterFunc("pdfd_"+kind+"_total", "Dynamic.", func() float64 { return 0 }) // want `metric name must be a constant-foldable string`
}

// GoodTenantFamily mirrors the engine's per-tenant registration
// sites: gauge/counter/histogram vectors labelled by tenant (and shed
// reason), all with literal names.
func GoodTenantFamily() *obs.Registry {
	reg := obs.NewRegistry()
	reg.MustRegister(
		obs.NewGaugeVec("pdfd_tenant_queued", "Queued jobs by tenant.", "tenant"),
		obs.NewGaugeVec("pdfd_tenant_running", "Running jobs by tenant.", "tenant"),
		obs.NewCounterVec("pdfd_tenant_jobs_done_total", "Completed jobs by tenant.", "tenant"),
		obs.NewCounterVec("pdfd_tenant_shed_total", "Shed submissions by tenant and reason.", "tenant", "reason"),
		obs.NewHistogramVec("pdfd_tenant_queue_wait_seconds", "Queue wait by tenant.", obs.DefBuckets, "tenant"),
		obs.NewCounterVec("pdfd_cluster_tenant_routed_total", "Routed submissions by tenant.", "tenant", "affinity"),
	)
	return reg
}

// BadTenantFamily interpolates the tenant into the metric NAME — the
// cardinality bomb the per-tenant label design exists to avoid (and a
// name the analyzer cannot prove well-formed).
func BadTenantFamily(tenant string) {
	obs.NewCounterFunc("pdfd_tenant_"+tenant+"_jobs_total", "Per-tenant family by name.", func() float64 { return 0 }) // want `metric name must be a constant-foldable string`
}

// GoodStoreFamily mirrors the durable-store registration sites: a
// counter-forwarding family plus entry/byte gauges, all with literal
// names.
func GoodStoreFamily() *obs.Registry {
	reg := obs.NewRegistry()
	reg.MustRegister(
		obs.NewCounterFunc("pdfd_fixture_store_hits_total", "Store hits.", func() float64 { return 0 }),
		obs.NewCounterFunc("pdfd_fixture_store_corrupt_total", "Corrupt entries.", func() float64 { return 0 }),
		obs.NewGaugeFunc("pdfd_fixture_store_entries", "Entries resident.", func() float64 { return 0 }),
		obs.NewGaugeFunc("pdfd_fixture_store_bytes", "Payload bytes resident.", func() float64 { return 0 }),
	)
	return reg
}

// BadStoreFamily assembles the store family name from a runtime
// value, which the registry would expose unvalidated.
func BadStoreFamily(counter string) {
	obs.NewCounterFunc("pdfd_fixture_store_"+counter+"_total", "Dynamic family.", func() float64 { return 0 }) // want `metric name must be a constant-foldable string`
}
