// Package errenvelopefix is the pdflint fixture for the errenvelope
// analyzer: engine handlers answer errors through the unified
// envelope helper, never http.Error.
package errenvelopefix

import (
	"encoding/json"
	"net/http"
)

// writeError is the fixture's stand-in for the engine's envelope
// helper.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]any{"code": code, "message": msg},
	})
}

// BadHandler bypasses the envelope.
func BadHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed) // want `http.Error bypasses the /v1 error envelope`
		return
	}
	w.WriteHeader(http.StatusOK)
}

// GoodHandler answers through the envelope.
func GoodHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "invalid_spec", "method not allowed")
		return
	}
	w.WriteHeader(http.StatusOK)
}
