// Package locksfix is the pdflint fixture for the locks analyzer:
// channel operations and blocking calls under a held mutex, and
// Lock without a reachable Unlock.
package locksfix

import (
	"sync"
	"time"
)

// Queue is a toy engine-shaped struct.
type Queue struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	ch    chan int
	items []int
}

// BadSend blocks on a channel send while holding the mutex.
func (q *Queue) BadSend(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.ch <- v // want `channel send on q.ch while holding q.mu`
	q.mu.Unlock()
}

// BadRecv blocks on a receive under a deferred unlock.
func (q *Queue) BadRecv() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want `channel receive from q.ch while holding q.mu`
}

// BadSleep sleeps in the critical section.
func (q *Queue) BadSleep() {
	q.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding q.mu`
	q.mu.Unlock()
}

// BadSelect has no default clause, so it can park holding the lock.
func (q *Queue) BadSelect() {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want `blocking select while holding q.mu`
	case v := <-q.ch:
		q.items = append(q.items, v)
	case q.ch <- 0:
	}
}

// BadUnbalanced never releases.
func (q *Queue) BadUnbalanced() {
	q.rw.RLock() // want `q.rw locked with no reachable RUnlock`
	_ = len(q.items)
}

// GoodNonBlocking is the engine idiom: select with default under the
// lock never parks.
func (q *Queue) GoodNonBlocking(v int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v:
		return true
	default:
		return false
	}
}

// GoodEarlyUnlock releases before blocking.
func (q *Queue) GoodEarlyUnlock() int {
	q.mu.Lock()
	n := len(q.items)
	q.mu.Unlock()
	if n == 0 {
		return <-q.ch
	}
	return n
}

// GoodBranchUnlock releases on the early-return path and falls
// through still holding (no blocking op afterwards).
func (q *Queue) GoodBranchUnlock() int {
	q.mu.Lock()
	if len(q.items) == 0 {
		q.mu.Unlock()
		return <-q.ch
	}
	v := q.items[0]
	q.mu.Unlock()
	return v
}
