// Package lockorder seeds an AB/BA lock-acquisition-order cycle for
// the lockorder analyzer: one path locks A then B in the same
// function, the other locks B and then acquires A through a callee —
// the cycle is only visible interprocedurally.
package lockorder

import "sync"

type apool struct{ mu sync.Mutex }

type bpool struct{ mu sync.Mutex }

var a apool

var b bpool

// abPath nests B under A directly.
func abPath() {
	a.mu.Lock()
	b.mu.Lock() // want `lock order cycle`
	b.mu.Unlock()
	a.mu.Unlock()
}

// baPath holds B and acquires A three frames away.
func baPath() {
	b.mu.Lock()
	viaHelper()
	b.mu.Unlock()
}

func viaHelper() { lockA() }

func lockA() {
	a.mu.Lock()
	a.mu.Unlock()
}

// sameClassOnly nests two locks in a fixed order everywhere; no
// reversed path, no cycle, no diagnostic.
func sameClassOnly() {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}
