// Package closeleak seeds resource-release violations: response
// bodies, files and tickers that are not closed on every path —
// including the early error-return between acquisition and the
// eventual defer — plus the time.After-in-a-loop timer churn.
package closeleak

import (
	"errors"
	"net/http"
	"os"
	"time"
)

var errNotOK = errors.New("unexpected status")

// earlyReturn leaks the body on the non-200 path: the deferred close
// is installed after the early return.
func earlyReturn(c *http.Client, req *http.Request) error {
	resp, err := c.Do(req) // want `http\.Response\.Body "resp" acquired here is not closed on every path`
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return errNotOK
	}
	defer resp.Body.Close()
	return nil
}

// deferredFirst installs the close before any early return: clean.
func deferredFirst(c *http.Client, req *http.Request) error {
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errNotOK
	}
	return nil
}

// tickerLeak returns without stopping the ticker.
func tickerLeak(stop chan struct{}) {
	t := time.NewTicker(time.Second) // want `time\.Ticker "t" acquired here is not stopped on every path`
	for {
		select {
		case <-t.C:
		case <-stop:
			return
		}
	}
}

// tickerStopped defers the Stop: clean.
func tickerStopped(stop chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-stop:
			return
		}
	}
}

// handoff passes the file to a callee whose summary proves it closes
// that parameter: ownership transferred, clean.
func handoff(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return consume(f)
}

// consume closes its parameter (ClosesParams fact).
func consume(f *os.File) error {
	defer f.Close()
	buf := make([]byte, 16)
	_, err := f.Read(buf)
	return err
}

// returned transfers ownership to the caller: clean here.
func returned(path string) (*os.File, error) {
	return os.Open(path)
}

// nilGuarded closes behind a nil check: the only open path releases.
func nilGuarded(c *http.Client, req *http.Request) {
	resp, _ := c.Do(req)
	if resp != nil {
		resp.Body.Close()
	}
}

// suppressedLeak is a real leak silenced in place; the run records
// the reason (see TestIgnoreSuppressesWithReason).
func suppressedLeak(path string) {
	//lint:ignore closeleak fixture demonstrates interprocedural suppression
	f, err := os.Open(path)
	if err != nil {
		return
	}
	f.Name()
}

// afterInLoop allocates a timer per retry that lives until it fires.
func afterInLoop(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		case <-time.After(time.Minute): // want `time\.After in a loop allocates a timer every iteration`
		}
	}
}

// afterOnce outside a loop is fine.
func afterOnce(done chan struct{}) {
	select {
	case <-done:
	case <-time.After(time.Minute):
	}
}
