// Package fsyncdirfix is the pdflint fixture for the fsyncdir
// analyzer: os.Rename in a durable package must be followed by a
// parent-directory fsync in the same function frame.
package fsyncdirfix

import "os"

// syncDir is the project's directory-fsync convention.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// InstallGood is the full atomic-install idiom: rename then sync the
// parent directory.
func InstallGood(tmp, final, dir string) error {
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(dir)
}

// InstallMethodSyncGood accepts the convention through a method call.
type journal struct{ dir string }

func (j *journal) syncDir() error { return syncDir(j.dir) }

func (j *journal) rotate(tmp, final string) error {
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return j.syncDir()
}

// InstallBad renames without ever syncing the directory: a crash can
// undo the rename after the caller was told it succeeded.
func InstallBad(tmp, final string) error {
	return os.Rename(tmp, final) // want `os.Rename on the durability path is not followed by a parent-directory fsync`
}

// SyncBeforeBad syncs the directory before the rename, which protects
// nothing: the ordering is what makes the entry durable.
func SyncBeforeBad(tmp, final, dir string) error {
	if err := syncDir(dir); err != nil {
		return err
	}
	return os.Rename(tmp, final) // want `os.Rename on the durability path is not followed by a parent-directory fsync`
}

// LiteralFrameBad pairs per function frame: the sync lives in a
// different frame (a deferred literal has its own), so the rename in
// the literal is unprotected.
func LiteralFrameBad(tmp, final, dir string) func() error {
	return func() error {
		return os.Rename(tmp, final) // want `os.Rename on the durability path is not followed by a parent-directory fsync`
	}
}
