// Package randfix is the pdflint fixture for the rand analyzer: the
// deterministic packages must not draw from the unseeded global
// math/rand source.
package randfix

import "math/rand"

// Bad draws from the process-global source.
func Bad() int {
	n := rand.Intn(10)                 // want `unseeded math/rand.Intn`
	rand.Shuffle(n, func(i, j int) {}) // want `unseeded math/rand.Shuffle`
	return n + int(rand.Int63())       // want `unseeded math/rand.Int63`
}

// Good uses an explicitly seeded generator.
func Good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// Suppressed demonstrates //lint:ignore with a recorded reason.
func Suppressed() float64 {
	//lint:ignore rand fixture demonstrates suppression
	return rand.Float64()
}
