// Package gofuncfix is the pdflint fixture for the gofunc analyzer:
// goroutines in long-lived packages must be cancelable or tracked.
package gofuncfix

import (
	"context"
	"sync"
)

// Server is a toy daemon-shaped struct.
type Server struct {
	wg   sync.WaitGroup
	ch   chan int
	done chan struct{}
}

// BadFireAndForget spawns an untracked, uncancelable goroutine.
func (s *Server) BadFireAndForget() {
	go func() { // want `goroutine is neither context-aware nor WaitGroup-tracked`
		for v := range s.ch {
			_ = v
		}
	}()
}

// BadNamed spawns a method that nothing can stop or await.
func (s *Server) BadNamed() {
	go s.pump() // want `goroutine is neither context-aware nor WaitGroup-tracked`
}

func (s *Server) pump() {
	for v := range s.ch {
		_ = v
	}
}

// GoodContextParam takes the context as a parameter.
func (s *Server) GoodContextParam(ctx context.Context) {
	go func(ctx context.Context) {
		<-ctx.Done()
	}(ctx)
}

// GoodContextCapture captures a context in the closure.
func (s *Server) GoodContextCapture(ctx context.Context) {
	go func() {
		select {
		case <-ctx.Done():
		case v := <-s.ch:
			_ = v
		}
	}()
}

// GoodWaitGroup tracks the goroutine's lifetime.
func (s *Server) GoodWaitGroup() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for v := range s.ch {
			_ = v
		}
	}()
}

// GoodTrackedMethod spawns a method whose body is WaitGroup-tracked,
// the engine's `go e.worker()` shape.
func (s *Server) GoodTrackedMethod() {
	s.wg.Add(1)
	go s.worker()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for v := range s.ch {
		_ = v
	}
}
