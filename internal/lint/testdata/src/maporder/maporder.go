// Package maporderfix is the pdflint fixture for the maporder
// analyzer: ranging over a map into an ordered result without a sort.
package maporderfix

import (
	"fmt"
	"io"
	"sort"
)

// BadAppend feeds an ordered fault list from random map order.
func BadAppend(seen map[string]int) []string {
	var out []string
	for k := range seen {
		out = append(out, k) // want `append to out inside range over map seen`
	}
	return out
}

// BadString builds output text in map order.
func BadString(seen map[string]int) string {
	s := ""
	for k, v := range seen {
		s += fmt.Sprintf("%s=%d\n", k, v) // want `string build of s inside range over map seen`
	}
	return s
}

// BadEmit writes test patterns in map order.
func BadEmit(w io.Writer, seen map[string]int) {
	for k := range seen {
		fmt.Fprintln(w, k) // want `fmt.Fprintln emission inside range over map seen`
	}
}

// GoodSortedAfter collects then sorts before anyone can observe the
// order.
func GoodSortedAfter(seen map[string]int) []string {
	var out []string
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// GoodSortedKeys iterates a sorted key slice, not the map.
func GoodSortedKeys(seen map[string]int) []string {
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprint(seen[k]))
	}
	return out
}

// GoodUnordered writes into order-insensitive state.
func GoodUnordered(seen map[string]int) int {
	total := 0
	for _, v := range seen {
		total += v
	}
	return total
}
