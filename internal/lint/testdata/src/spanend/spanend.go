// Package spanendfix is the pdflint fixture for the spanend analyzer:
// every span started with obs.StartSpan must End in its function.
package spanendfix

import (
	"context"

	"repro/internal/obs"
)

// Job mimics the engine's field-stored span (out of the analyzer's
// intra-procedural scope).
type Job struct {
	root *obs.Span
}

// BadNeverEnded starts a span and leaks it.
func BadNeverEnded(ctx context.Context) {
	ctx, span := obs.StartSpan(ctx, "prepare") // want `span span is never .End\(\)ed in this function`
	_ = ctx
	_ = span
}

// BadDiscarded throws the span away at the call site.
func BadDiscarded(ctx context.Context) {
	_, _ = obs.StartSpan(ctx, "generation") // want `span assigned to _: it can never End`
}

// GoodDefer ends via defer.
func GoodDefer(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "simulation")
	defer span.End()
}

// GoodBranches ends on every path the function owns.
func GoodBranches(ctx context.Context, fail bool) error {
	_, span := obs.StartSpan(ctx, "compaction")
	if fail {
		span.End(obs.Bool("ok", false))
		return context.Canceled
	}
	span.End(obs.Bool("ok", true))
	return nil
}

// GoodField stores the span on a struct; other methods end it, which
// the trace tests cover end-to-end.
func GoodField(ctx context.Context, j *Job) {
	_, j.root = obs.StartSpan(ctx, "job")
}

// End releases the job's root span.
func (j *Job) End() { j.root.End() }
