// Package coordenvelope is the pdflint fixture for the errenvelope
// analyzer over coordinator-shaped handlers: routing and batch
// fan-out code answers errors through the unified envelope too —
// http.Error is just as forbidden when the error is "no backend" as
// when it is "invalid spec".
package coordenvelope

import (
	"encoding/json"
	"net/http"
)

// routedError mirrors the coordinator's folded routing failure.
type routedError struct {
	Status int
	Code   string
	Msg    string
}

// writeRouted is the fixture's stand-in for the coordinator's
// envelope helper.
func writeRouted(w http.ResponseWriter, re routedError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(re.Status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]any{"code": re.Code, "message": re.Msg},
	})
}

// route is a stand-in owner-chain walk: no backend eligible.
func route() *routedError {
	return &routedError{Status: http.StatusServiceUnavailable, Code: "no_backend", Msg: "no healthy backend"}
}

// BadSubmit bypasses the envelope on a routing failure.
func BadSubmit(w http.ResponseWriter, r *http.Request) {
	if re := route(); re != nil {
		http.Error(w, re.Msg, re.Status) // want `http.Error bypasses the /v1 error envelope`
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

// BadBatch bypasses the envelope on a malformed batch body.
func BadBatch(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Jobs []json.RawMessage `json:"jobs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad batch", http.StatusBadRequest) // want `http.Error bypasses the /v1 error envelope`
		return
	}
	w.WriteHeader(http.StatusOK)
}

// GoodSubmit answers routing failures through the envelope.
func GoodSubmit(w http.ResponseWriter, r *http.Request) {
	if re := route(); re != nil {
		writeRouted(w, *re)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

// authorize is a stand-in bearer-key check.
func authorize(r *http.Request) bool { return r.Header.Get("Authorization") != "" }

// overQuota is a stand-in per-tenant queue-bound check.
func overQuota(r *http.Request) bool { return r.Header.Get("X-Pdfd-Tenant") == "over" }

// BadAuth answers a failed credential check outside the envelope.
// Auth rejections are API responses like any other: clients match on
// error.code ("unauthorized"), not on a text/plain body.
func BadAuth(w http.ResponseWriter, r *http.Request) {
	if !authorize(r) {
		http.Error(w, "missing bearer credential", http.StatusUnauthorized) // want `http.Error bypasses the /v1 error envelope`
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

// BadQuota sheds an over-quota tenant outside the envelope, losing
// the machine-readable code and retry_after_ms.
func BadQuota(w http.ResponseWriter, r *http.Request) {
	if overQuota(r) {
		http.Error(w, "quota exceeded", http.StatusTooManyRequests) // want `http.Error bypasses the /v1 error envelope`
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

// GoodTenantGate answers 401 and 429 through the envelope, with the
// retry headers the tenancy API documents.
func GoodTenantGate(w http.ResponseWriter, r *http.Request) {
	if !authorize(r) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="pdfd"`)
		writeRouted(w, routedError{Status: http.StatusUnauthorized, Code: "unauthorized", Msg: "missing or unknown bearer credential"})
		return
	}
	if overQuota(r) {
		w.Header().Set("Retry-After", "1")
		writeRouted(w, routedError{Status: http.StatusTooManyRequests, Code: "quota_exceeded", Msg: "tenant queue quota exceeded"})
		return
	}
	w.WriteHeader(http.StatusAccepted)
}
