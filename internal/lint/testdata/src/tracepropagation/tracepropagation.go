// Package tracepropfix is the pdflint fixture for the
// tracepropagation analyzer: backend-bound requests in a cluster
// package must be built by the header-injecting helper, never by a
// raw http.NewRequest.
package tracepropfix

import (
	"context"
	"io"
	"net/http"
)

// newOutboundRequest is the sanctioned construction site: the real
// helper injects traceparent and X-Request-ID here.
func newOutboundRequest(ctx context.Context, method, url string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("traceparent", "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01")
	return req, nil
}

// ProbeGood builds its request through the helper.
func ProbeGood(ctx context.Context, url string) (*http.Request, error) {
	return newOutboundRequest(ctx, http.MethodGet, url, nil)
}

// ProbeBad builds a raw request: no traceparent, no request ID — the
// backend's spans detach from the caller's trace.
func ProbeBad(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, http.MethodGet, url, nil) // want `bypasses the outbound-request helper`
}

// LegacyBad uses the context-free constructor; equally invisible to
// the trace.
func LegacyBad(url string) (*http.Request, error) {
	return http.NewRequest(http.MethodGet, url, nil) // want `bypasses the outbound-request helper`
}
