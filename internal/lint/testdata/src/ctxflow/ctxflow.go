// Package ctxflow seeds dropped-context violations: functions that
// receive a context.Context but call a blocking callee (proven
// blocking by the facts engine, here across a package boundary) with
// a fresh context.Background()/TODO(), severing cancellation.
package ctxflow

import (
	"context"

	"repro/internal/lint/testdata/src/ctxflow/dep"
)

// run drops its caller's ctx on a cross-package blocking callee.
func run(ctx context.Context) error {
	return dep.Poll(context.Background()) // want `calls blocking .*dep\.Poll with context\.Background`
}

// retryLoop drops ctx with TODO on a same-package callee that blocks
// transitively (settle -> dep.Poll).
func retryLoop(ctx context.Context) error {
	return settle(context.TODO()) // want `calls blocking .*settle with context\.TODO`
}

func settle(ctx context.Context) error {
	return dep.Poll(ctx)
}

// threaded passes the caller's ctx everywhere: clean.
func threaded(ctx context.Context) error {
	if err := settle(ctx); err != nil {
		return err
	}
	return dep.Poll(ctx)
}

// nonBlocking hands a fresh context to a non-blocking callee: the
// facts engine proves Quick never blocks, so no diagnostic.
func nonBlocking(ctx context.Context) error {
	return dep.Quick(context.Background())
}

// noCtxParam has no context of its own to thread; out of scope.
func noCtxParam() error {
	return dep.Poll(context.Background())
}
