// Package dep is the cross-package blocking callee for the ctxflow
// fixture: Poll is proven blocking by the facts engine (time.Sleep)
// and accepts a context, so callers must thread theirs in.
package dep

import (
	"context"
	"time"
)

// Poll blocks between attempts.
func Poll(ctx context.Context) error {
	time.Sleep(10 * time.Millisecond)
	return ctx.Err()
}

// Quick does not block; handing it a fresh context is fine as far as
// ctxflow is concerned.
func Quick(ctx context.Context) error {
	return ctx.Err()
}
