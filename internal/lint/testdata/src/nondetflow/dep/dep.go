// Package dep is the cross-package taint source for the nondetflow
// fixture: Stamp's return value derives from the wall clock, and the
// facts engine carries that fact across the package boundary.
package dep

import "time"

// Stamp returns a wall-clock-derived tag (tainted return).
func Stamp() string {
	return time.Now().Format("150405.000")
}

// Echo passes its argument through to its return value; taint flows
// with it (ParamToReturn).
func Echo(s string) string {
	return s
}

// Fixed returns a constant: never tainted.
func Fixed() string {
	return "fixed"
}
