// Package nondetflow seeds nondeterminism-taint flows into
// determinism sinks. Digest and Put stand in for the real sinks
// (engine.SpecDigest, store keys); the test config names them in
// NondetSinks, checking every Digest argument but only Put's key.
package nondetflow

import (
	"fmt"
	"math/rand"

	"repro/internal/lint/testdata/src/nondetflow/dep"
)

// Digest is the fixture determinism sink: every argument checked.
func Digest(parts ...string) string {
	return fmt.Sprint(parts)
}

// Put is the fixture keyed sink: only argument 0 (the key) checked.
func Put(key string, payload []byte) {}

// crossPkg: wall-clock taint produced in another package reaches the
// digest.
func crossPkg() string {
	tag := dep.Stamp()
	return Digest("spec", tag) // want `nondeterministic value \(calls .*dep\.Stamp\) reaches determinism sink`
}

// randKey: unseeded rand flows through fmt.Sprintf into a store key.
func randKey() {
	k := fmt.Sprintf("job-%d", rand.Int())
	Put(k, nil) // want `nondeterministic value \(unseeded math/rand\.Int\) reaches determinism sink`
}

// passThrough: taint survives a pass-through helper (ParamToReturn).
func passThrough() string {
	return Digest(dep.Echo(dep.Stamp())) // want `reaches determinism sink`
}

// mapOrder: keys collected from a map range without a sort are
// nondeterministically ordered when they hit the digest.
func mapOrder(m map[string]int) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return Digest(keys...) // want `nondeterministic value \(map iteration order\) reaches determinism sink`
}

// payloadOK: the unchecked payload argument may carry wall-clock data
// (observability timestamps do); only the key matters.
func payloadOK(b []byte) {
	Put(dep.Fixed(), b)
}

// seededOK: derived from the spec and a constant; clean.
func seededOK(spec string) string {
	return Digest(spec, dep.Fixed())
}
