// Package timenowfix is the pdflint fixture for the timenow analyzer:
// wall-clock reads in deterministic packages need a //lint:telemetry
// annotation proving they are observational only.
package timenowfix

import "time"

// Result mimics a generation result with a telemetry field.
type Result struct {
	Tests   []int
	Elapsed time.Duration
}

// Bad lets the wall clock leak into the result payload.
func Bad() *Result {
	res := &Result{}
	if time.Now().UnixNano()%2 == 0 { // want `time.Now in deterministic package`
		res.Tests = append(res.Tests, 1)
	}
	return res
}

// BadSince measures without an annotation.
func BadSince(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in deterministic package`
}

// Good annotates the observational read.
func Good() *Result {
	start := time.Now() //lint:telemetry feeds Elapsed only
	res := &Result{Tests: []int{1}}
	//lint:telemetry wall-clock report, not part of the digest
	res.Elapsed = time.Since(start)
	return res
}
