package lint

import (
	"go/ast"
)

// AnalyzerNondetFlow tracks nondeterminism taint interprocedurally:
// values derived from unseeded math/rand, time.Now/Since or map
// iteration order must never reach a determinism sink — the digest
// functions, store keys and journal records that serial-vs-parallel
// equivalence, journal replay and the perfreg baseline key on.
// Intra-procedurally the per-package rand/timenow/maporder analyzers
// flag the sources in the generation packages; this analyzer covers
// the other direction: a tainted value produced anywhere (a helper in
// cmd/, a cluster handler) flowing through returns and assignments
// into a sink. Config.NondetSinks names the sinks and which argument
// positions matter.
var AnalyzerNondetFlow = &Analyzer{
	Name:      "nondetflow",
	Doc:       "nondeterminism taint (rand, time.Now, map order) reaching a determinism sink",
	RunModule: runNondetFlow,
}

func runNondetFlow(mp *ModulePass) {
	if len(mp.Config.NondetSinks) == 0 {
		return
	}
	for _, n := range mp.Facts.Graph.Nodes {
		pass := &Pass{Pkg: n.Pkg}
		tc := &taintCtx{facts: mp.Facts, node: n, pass: pass, env: n.taintedVars}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, isCall := node.(*ast.CallExpr)
			if !isCall {
				return true
			}
			full := ""
			if callee := mp.Facts.Graph.resolveCallee(n.Pkg, call); callee != nil {
				full = string(callee.Key)
			} else {
				full = calleeFullName(pass, call)
			}
			if full == "" {
				return true
			}
			argIdx, isSink := mp.Config.NondetSinks[full]
			if !isSink {
				return true
			}
			check := func(i int) {
				if i >= len(call.Args) {
					return
				}
				m := tc.mark(call.Args[i])
				if !m.src {
					return
				}
				chain := []ChainFrame{mp.Facts.frame(call.Pos(), n.Key, "passes tainted value to "+shortKey(FuncKey(full)))}
				chain = append(chain, mp.Facts.markChain(n, m)...)
				mp.Report(call.Args[i].Pos(), chain,
					"nondeterministic value (%s) reaches determinism sink %s (argument %d); derive it from the spec or a seeded source",
					m.why, shortKey(FuncKey(full)), i)
			}
			if len(argIdx) == 0 {
				for i := range call.Args {
					check(i)
				}
			} else {
				for _, i := range argIdx {
					check(i)
				}
			}
			return true
		})
	}
}
