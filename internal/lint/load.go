package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadOptions parameterize LoadModule.
type LoadOptions struct {
	// ExtraDirs are directories loaded in addition to the module walk
	// even when the walk would skip them (fixture packages live under
	// testdata/, which the walk ignores like the go tool does).
	ExtraDirs []string
	// Only restricts the walk to directories under these roots
	// (relative to the module root). Empty means the whole module.
	Only []string
}

// LoadModule parses and type-checks every package of the module
// rooted at root (skipping testdata, hidden and vendor directories,
// and _test.go files), in dependency order so that intra-module
// imports resolve to fully checked packages. Standard-library imports
// are type-checked from GOROOT source via go/importer's source
// importer — the module itself stays zero-dependency, so stdlib and
// module-local packages are the only two cases.
//
// Type errors do not abort the load: they are recorded on the package
// and analysis proceeds on partial information, so one broken file
// cannot hide findings elsewhere.
func LoadModule(root string, opts *LoadOptions) ([]*Package, error) {
	if opts == nil {
		opts = &LoadOptions{}
	}
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	dirs, err := packageDirs(root, opts.Only)
	if err != nil {
		return nil, err
	}
	for _, d := range opts.ExtraDirs {
		ad, err := filepath.Abs(d)
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, ad)
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	var pkgs []*Package
	byPath := make(map[string]*Package)
	for _, dir := range dirs {
		pkg, err := parseDir(fset, root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no non-test Go files
		}
		pkgs = append(pkgs, pkg)
		byPath[pkg.PkgPath] = pkg
	}

	ordered, err := topoSort(pkgs, byPath)
	if err != nil {
		return nil, err
	}

	local := make(map[string]*types.Package)
	std := importer.ForCompiler(fset, "source", nil)
	imp := &chainImporter{local: local, std: std}
	for _, pkg := range ordered {
		typecheck(fset, pkg, imp)
		if pkg.Types != nil {
			local[pkg.PkgPath] = pkg.Types
		}
	}
	return ordered, nil
}

// chainImporter resolves module-local imports from the packages the
// loader has already checked and everything else (stdlib) from
// GOROOT source.
type chainImporter struct {
	local map[string]*types.Package
	std   types.Importer
	memo  map[string]*types.Package
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	if p, ok := c.memo[path]; ok {
		return p, nil
	}
	p, err := c.std.Import(path)
	if err != nil {
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	if c.memo == nil {
		c.memo = make(map[string]*types.Package)
	}
	c.memo[path] = p
	return p, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// packageDirs walks root collecting every directory that holds Go
// files, skipping what the go tool skips: testdata, vendor, hidden
// and underscore-prefixed directories.
func packageDirs(root string, only []string) ([]string, error) {
	roots := []string{root}
	if len(only) > 0 {
		roots = nil
		for _, o := range only {
			roots = append(roots, filepath.Join(root, o))
		}
	}
	seen := make(map[string]bool)
	var dirs []string
	for _, r := range roots {
		err := filepath.WalkDir(r, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != r && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) && !seen[path] {
				seen[path] = true
				dirs = append(dirs, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isLintedGoFile(e.Name()) {
			return true
		}
	}
	return false
}

func isLintedGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// parseDir parses the non-test Go files of dir into a Package (nil if
// the directory holds none).
func parseDir(fset *token.FileSet, root, modPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !isLintedGoFile(e.Name()) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", path, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil {
				importSet[p] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	pkgPath := modPath
	if rel != "." {
		pkgPath = modPath + "/" + filepath.ToSlash(rel)
	}
	var localImports []string
	for p := range importSet {
		if p == modPath || strings.HasPrefix(p, modPath+"/") {
			localImports = append(localImports, p)
		}
	}
	sort.Strings(localImports)
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		imports: localImports,
	}, nil
}

// topoSort orders packages so every module-local import precedes its
// importer (imports of packages outside the load set are ignored —
// the importer falls back to source-checking them on demand is not
// possible for module paths, so analyzers just see partial types).
func topoSort(pkgs []*Package, byPath map[string]*Package) ([]*Package, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(pkgs))
	var ordered []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.PkgPath] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p.PkgPath)
		}
		state[p.PkgPath] = visiting
		for _, imp := range p.imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.PkgPath] = done
		ordered = append(ordered, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

func typecheck(fset *token.FileSet, pkg *Package, imp types.Importer) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, _ := conf.Check(pkg.PkgPath, fset, pkg.Files, info)
	pkg.Types = tpkg
	pkg.Info = info
}
