package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// AnalyzerLocks enforces the project's lock discipline in every
// package:
//
//   - no channel send/receive, blocking select, time.Sleep or
//     WaitGroup.Wait while a sync.Mutex/RWMutex is held (the engine's
//     deadlock class: a worker blocks on the queue channel holding
//     e.mu while Close waits for e.mu to drain the queue). A select
//     with a default clause is non-blocking and allowed — that is
//     exactly the engine's registered-enqueue idiom.
//   - no Lock/RLock without a reachable Unlock/RUnlock on the same
//     receiver in the same function (direct or deferred, including
//     inside function literals defined there).
//
// The analysis is intra-procedural and branch-local: each branch of
// an if/switch/select is analyzed with a copy of the held-set, so an
// early-return unlock inside a branch neither leaks out nor hides a
// fall-through hold. Lock handoff across functions is rare and
// intentional enough to deserve a //lint:ignore with its invariant
// spelled out.
var AnalyzerLocks = &Analyzer{
	Name: "locks",
	Doc:  "channel op / blocking call under a held mutex; Lock without reachable Unlock",
	Run:  runLocks,
}

func runLocks(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		funcBodies(file, func(name string, body *ast.BlockStmt) {
			lf := &lockFrame{pass: pass, file: file}
			lf.block(body.List, lockState{})
			lf.balance(name, body)
		})
	}
}

// lockState maps a receiver rendering ("e.mu") to the position of the
// Lock call that acquired it.
type lockState map[string]token.Pos

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

type lockFrame struct {
	pass *Pass
	file *ast.File
}

// mutexOp classifies call as a Lock/Unlock-family call on a mutex-ish
// receiver, returning the receiver expression. Shared between the
// intra-procedural locks analyzer and the facts engine (facts.go).
func mutexOp(pass *Pass, call *ast.CallExpr) (recv ast.Expr, op string, ok bool) {
	recvExpr, name, isMethod := methodCall(pass, call)
	if !isMethod || len(call.Args) != 0 {
		return nil, "", false
	}
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", false
	}
	if !mutexish(pass, recvExpr, call) {
		return nil, "", false
	}
	return recvExpr, name, true
}

// mutexish reports whether the Lock/Unlock receiver is (or embeds) a
// sync mutex. With full type info this is exact; on partial info it
// falls back to the project naming convention (mu / Mu / mutex /
// lock) so a type error elsewhere cannot hide a violation.
func mutexish(pass *Pass, recv ast.Expr, call *ast.CallExpr) bool {
	switch namedType(pass.TypeOf(recv)) {
	case "sync.Mutex", "sync.RWMutex":
		return true
	}
	if recvTypeIs(pass, call, "sync.Mutex") || recvTypeIs(pass, call, "sync.RWMutex") {
		return true
	}
	if pass.TypeOf(recv) != nil {
		return false // typed, and not a mutex (sync.Map, custom lockers...)
	}
	name := strings.ToLower(exprString(recv))
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	return name == "mu" || name == "mutex" || strings.HasSuffix(name, "mu") || strings.HasSuffix(name, "lock")
}

// mutexOpStr is mutexOp with the receiver rendered as a string (the
// locks analyzer keys its held-set on the textual receiver).
func (lf *lockFrame) mutexOp(call *ast.CallExpr) (recv, op string, ok bool) {
	recvExpr, name, isOp := mutexOp(lf.pass, call)
	if !isOp {
		return "", "", false
	}
	return exprString(recvExpr), name, true
}

// block walks a statement list in order, threading the held-set.
// Nested control-flow blocks get a clone: acquisitions and releases
// inside a branch stay local to it.
func (lf *lockFrame) block(stmts []ast.Stmt, held lockState) {
	for _, stmt := range stmts {
		lf.stmt(stmt, held)
	}
}

func (lf *lockFrame) stmt(stmt ast.Stmt, held lockState) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, isCall := s.X.(*ast.CallExpr); isCall {
			if recv, op, ok := lf.mutexOp(call); ok {
				switch op {
				case "Lock", "RLock":
					held[recv] = call.Pos()
				case "Unlock", "RUnlock":
					delete(held, recv)
				}
				return
			}
		}
		lf.check(s.X, held)
	case *ast.DeferStmt:
		if recv, op, ok := lf.mutexOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			// The lock is held until the function returns; keep it in
			// the held-set so later statements are still checked.
			_ = recv
			return
		}
		lf.check(s.Call, held)
	case *ast.SendStmt:
		lf.report(held, s.Pos(), "channel send on %s", exprString(s.Chan))
		lf.check(s.Chan, held)
		lf.check(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lf.check(e, held)
		}
		for _, e := range s.Lhs {
			lf.check(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lf.check(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			lf.stmt(s.Init, held)
		}
		lf.check(s.Cond, held)
		lf.block(s.Body.List, held.clone())
		if s.Else != nil {
			lf.stmt(s.Else, held.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lf.stmt(s.Init, held)
		}
		if s.Cond != nil {
			lf.check(s.Cond, held)
		}
		lf.block(s.Body.List, held.clone())
	case *ast.RangeStmt:
		lf.check(s.X, held)
		lf.block(s.Body.List, held.clone())
	case *ast.BlockStmt:
		lf.block(s.List, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			lf.stmt(s.Init, held)
		}
		if s.Tag != nil {
			lf.check(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if c, isCase := cc.(*ast.CaseClause); isCase {
				lf.block(c.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if c, isCase := cc.(*ast.CaseClause); isCase {
				lf.block(c.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, cc := range s.Body.List {
			if c, isComm := cc.(*ast.CommClause); isComm && c.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			lf.report(held, s.Pos(), "blocking select")
		}
		for _, cc := range s.Body.List {
			if c, isComm := cc.(*ast.CommClause); isComm {
				lf.block(c.Body, held.clone())
			}
		}
	case *ast.GoStmt:
		// The goroutine runs outside this frame's critical section;
		// its body is analyzed as its own function by funcBodies. The
		// call's arguments are evaluated here, though.
		for _, a := range s.Call.Args {
			lf.check(a, held)
		}
	case *ast.LabeledStmt:
		lf.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		lf.check(s, held)
	}
}

// check walks an expression (or small statement) for blocking
// operations while held is non-empty, skipping nested function
// literals.
func (lf *lockFrame) check(root ast.Node, held lockState) {
	if len(held) == 0 || root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				lf.report(held, n.Pos(), "channel receive from %s", exprString(n.X))
			}
		case *ast.CallExpr:
			if pkgPath, name, ok := pkgFuncCall(lf.pass, lf.file, n); ok &&
				pkgPath == "time" && name == "Sleep" {
				lf.report(held, n.Pos(), "time.Sleep")
			}
			if _, name, ok := methodCall(lf.pass, n); ok && name == "Wait" &&
				recvTypeIs(lf.pass, n, "sync.WaitGroup") {
				lf.report(held, n.Pos(), "WaitGroup.Wait")
			}
		}
		return true
	})
}

func (lf *lockFrame) report(held lockState, pos token.Pos, format string, args ...any) {
	if len(held) == 0 {
		return
	}
	// Name the longest-held lock for the message, deterministically.
	var recv string
	var at token.Pos
	for r, p := range held {
		if recv == "" || p < at || (p == at && r < recv) {
			recv, at = r, p
		}
	}
	line := lf.pass.Pkg.Fset.Position(at).Line
	lf.pass.Reportf(pos, "%s while holding %s (locked at line %d)",
		fmt.Sprintf(format, args...), recv, line)
}

// balance reports Lock calls with no matching Unlock on the same
// receiver anywhere in the function (including deferred calls and
// function literals defined inside it — closures that release a
// captured lock count as reachable).
func (lf *lockFrame) balance(name string, body *ast.BlockStmt) {
	locks := make(map[string][]token.Pos)
	unlocks := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		recv, op, ok := lf.mutexOp(call)
		if !ok {
			return true
		}
		switch op {
		case "Lock":
			locks["Lock:"+recv] = append(locks["Lock:"+recv], call.Pos())
		case "RLock":
			locks["RLock:"+recv] = append(locks["RLock:"+recv], call.Pos())
		case "Unlock":
			unlocks["Lock:"+recv] = true
		case "RUnlock":
			unlocks["RLock:"+recv] = true
		}
		return true
	})
	keys := make([]string, 0, len(locks))
	for k := range locks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if unlocks[k] {
			continue
		}
		recv := strings.TrimPrefix(strings.TrimPrefix(k, "Lock:"), "RLock:")
		op := "Unlock"
		if strings.HasPrefix(k, "RLock:") {
			op = "RUnlock"
		}
		for _, pos := range locks[k] {
			lf.pass.Reportf(pos, "%s locked with no reachable %s in %s", recv, op, name)
		}
	}
}
