package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerCloseLeak checks close-on-all-paths for owned resources:
// http.Response bodies, os.Files and time.Tickers (acquired directly
// or returned fresh by a module function, per the facts engine's
// Returns summaries) must be released on every path out of the
// acquiring function — including the early error-returns between the
// acquisition and the eventual `defer Close()`. The analysis is
// path-sensitive per branch (like the locks analyzer) and deliberately
// conservative about escapes: a resource that is returned, stored,
// sent, handed to another function whole, or captured by a closure
// stops being this function's responsibility.
//
// Recognized idioms that do NOT count as leaks:
//   - `x, err := acquire(); if err != nil { return err }` — on the
//     error path the resource is nil (net/http and os contract).
//   - `if x != nil { x.Close() }` — the nil-guarded close releases on
//     the only path where the resource exists.
//   - passing the resource to a callee whose summary says it closes
//     that parameter.
//
// It additionally flags `time.After` inside a loop's select: each
// iteration allocates a timer that is not collected until it fires —
// with long waits that is an unbounded-lifetime leak per iteration;
// hoist a time.NewTimer/NewTicker and Stop it.
var AnalyzerCloseLeak = &Analyzer{
	Name:      "closeleak",
	Doc:       "http.Response.Body / os.File / time.Ticker not released on every path; time.After in loops",
	RunModule: runCloseLeak,
}

func runCloseLeak(mp *ModulePass) {
	for _, n := range mp.Facts.Graph.Nodes {
		if !mp.Config.Resourceful(n.Pkg) {
			continue
		}
		lw := &leakWalker{
			mp: mp, n: n, pass: &Pass{Pkg: n.Pkg},
			reported: make(map[types.Object]bool),
		}
		state := make(leakState)
		lw.block(n.Decl.Body.List, state)
		lw.endOfPath(state, n.Decl.Body.Rbrace, "end of function")
		timeAfterInLoop(mp, n)
	}
}

// openRes is one tracked resource: what it is, where it was acquired,
// and the error variable assigned alongside it (nil-on-error idiom).
type openRes struct {
	kind   ResourceKind
	pos    token.Pos
	errObj types.Object
}

// leakState maps a resource variable to its open record; branchy
// control flow clones it per path.
type leakState map[types.Object]*openRes

func (s leakState) clone() leakState {
	c := make(leakState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

type leakWalker struct {
	mp       *ModulePass
	n        *FuncNode
	pass     *Pass
	reported map[types.Object]bool
}

func (lw *leakWalker) block(list []ast.Stmt, state leakState) {
	for _, s := range list {
		lw.stmt(s, state)
	}
}

func (lw *leakWalker) stmt(stmt ast.Stmt, state leakState) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		lw.acquire(s, state)
		for _, rhs := range s.Rhs {
			lw.closeScan(state, rhs) // err := f.Close() and friends
			lw.escape(state, rhs)
		}
	case *ast.ExprStmt:
		lw.closeScan(state, s.X)
		lw.escape(state, s.X)
	case *ast.DeferStmt:
		lw.closeScan(state, s.Call)
		lw.escape(state, s.Call)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			lw.closeScan(state, res) // return f.Close()
			lw.escape(state, res)
		}
		lw.endOfPath(state, s.Pos(), "return")
	case *ast.SendStmt:
		lw.escape(state, s.Chan)
		lw.escape(state, s.Value)
	case *ast.GoStmt:
		// The goroutine takes over anything it references.
		lw.escape(state, s.Call)
	case *ast.IfStmt:
		lw.ifStmt(s, state)
	case *ast.ForStmt:
		if s.Init != nil {
			lw.stmt(s.Init, state)
		}
		body := state.clone()
		lw.block(s.Body.List, body)
		lw.reconcile(state, s.Body.Rbrace, false, body)
	case *ast.RangeStmt:
		lw.escape(state, s.X)
		body := state.clone()
		lw.block(s.Body.List, body)
		lw.reconcile(state, s.Body.Rbrace, false, body)
	case *ast.BlockStmt:
		inner := state.clone()
		lw.block(s.List, inner)
		lw.reconcile(state, s.Rbrace, true, inner)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		lw.clauses(stmt, state)
	case *ast.LabeledStmt:
		lw.stmt(s.Stmt, state)
	}
}

func (lw *leakWalker) ifStmt(s *ast.IfStmt, state leakState) {
	if s.Init != nil {
		lw.stmt(s.Init, state)
	}
	errObj, op, condObj := lw.guard(s.Cond)

	thenState := state.clone()
	if errObj != nil && op == token.NEQ {
		// `if err != nil`: the paired resource is nil on this path.
		dropErrPaired(thenState, errObj)
	}
	lw.block(s.Body.List, thenState)

	var elseState leakState
	if s.Else != nil {
		elseState = state.clone()
		if errObj != nil && op == token.EQL {
			dropErrPaired(elseState, errObj)
		}
		lw.stmt(s.Else, elseState)
	}

	// Nil-guarded close: `if x != nil { x.Close() }` releases x on the
	// only path where it is open.
	if condObj != nil && op == token.NEQ {
		if _, open := state[condObj]; open {
			if _, still := thenState[condObj]; !still {
				delete(state, condObj)
			}
		}
	}
	if elseState != nil {
		lw.reconcile(state, s.End(), true, thenState, elseState)
	} else {
		lw.reconcile(state, s.End(), false, thenState)
	}
}

// guard decodes a `x != nil` / `x == nil` condition: errObj when x is
// an error variable, condObj when x is a tracked-resource candidate.
func (lw *leakWalker) guard(cond ast.Expr) (errObj types.Object, op token.Token, condObj types.Object) {
	be, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, 0, nil
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(x) {
		x, y = y, x
	}
	if !isNilIdent(y) {
		return nil, 0, nil
	}
	id, isIdent := x.(*ast.Ident)
	if !isIdent {
		return nil, 0, nil
	}
	obj := lw.pass.ObjectOf(id)
	if obj == nil {
		return nil, 0, nil
	}
	if obj.Type() != nil && obj.Type().String() == "error" {
		return obj, be.Op, nil
	}
	return nil, be.Op, obj
}

func isNilIdent(e ast.Expr) bool {
	id, isIdent := e.(*ast.Ident)
	return isIdent && id.Name == "nil"
}

func dropErrPaired(state leakState, errObj types.Object) {
	for obj, res := range state {
		if res.errObj == errObj {
			delete(state, obj)
		}
	}
}

// clauses walks switch/select bodies, one clone per clause.
func (lw *leakWalker) clauses(stmt ast.Stmt, state leakState) {
	var body *ast.BlockStmt
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			lw.stmt(s.Init, state)
		}
		if s.Tag != nil {
			lw.escape(state, s.Tag)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var clones []leakState
	for _, cc := range body.List {
		clone := state.clone()
		switch c := cc.(type) {
		case *ast.CaseClause:
			lw.block(c.Body, clone)
		case *ast.CommClause:
			lw.block(c.Body, clone)
		}
		clones = append(clones, clone)
	}
	lw.reconcile(state, body.Rbrace, false, clones...)
}

// reconcile folds branch clones back into the parent state:
//   - a resource every clone released disappears from the parent too,
//     when the clones cover every path (covers);
//   - a resource opened inside a branch either outlives the branch
//     (its variable is declared outside — the parent keeps tracking
//     it) or dies with the branch scope, in which case staying open is
//     a leak right here.
func (lw *leakWalker) reconcile(parent leakState, endPos token.Pos, covers bool, clones ...leakState) {
	if covers && len(clones) > 0 {
		for obj := range parent {
			releasedEverywhere := true
			for _, c := range clones {
				if _, open := c[obj]; open {
					releasedEverywhere = false
					break
				}
			}
			if releasedEverywhere {
				delete(parent, obj)
			}
		}
	}
	for _, c := range clones {
		for obj, res := range c {
			if _, known := parent[obj]; known {
				continue
			}
			if scopeOutlives(obj, endPos) {
				parent[obj] = res
				continue
			}
			lw.leak(obj, res, endPos, "end of block")
		}
	}
}

// scopeOutlives reports whether obj's declaration scope extends past
// pos (the variable survives the block that just ended).
func scopeOutlives(obj types.Object, pos token.Pos) bool {
	scope := obj.Parent()
	if scope == nil {
		return true // fields, package level: not ours to report here
	}
	return scope.End() > pos
}

// endOfPath reports every still-open resource at a path exit and
// clears them from this path's state.
func (lw *leakWalker) endOfPath(state leakState, pos token.Pos, how string) {
	for obj, res := range state {
		lw.leak(obj, res, pos, how)
		delete(state, obj)
	}
}

func (lw *leakWalker) leak(obj types.Object, res *openRes, exitPos token.Pos, how string) {
	if obj == nil || lw.reported[obj] {
		return
	}
	lw.reported[obj] = true
	exitLine := lw.mp.Facts.Fset.Position(exitPos).Line
	chain := []ChainFrame{
		lw.mp.Facts.frame(res.pos, lw.n.Key, "acquires "+res.kind.String()),
		lw.mp.Facts.frame(exitPos, lw.n.Key, how+" without "+res.kind.releaseVerb()),
	}
	lw.mp.Report(res.pos, chain,
		"%s %q acquired here is not %s on every path (%s at line %d leaves it open)",
		res.kind, obj.Name(), res.kind.released(), how, exitLine)
}

// acquire records resources the assignment brings into scope, pairing
// them with the error result assigned alongside.
func (lw *leakWalker) acquire(s *ast.AssignStmt, state leakState) {
	if len(s.Rhs) != 1 {
		return
	}
	call, isCall := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !isCall {
		return
	}
	kinds := lw.mp.Facts.allocates(lw.pass, call)
	if len(kinds) == 0 {
		return
	}
	var errObj types.Object
	for _, lhs := range s.Lhs {
		if id, isIdent := lhs.(*ast.Ident); isIdent {
			if obj := lw.pass.ObjectOf(id); obj != nil && obj.Type() != nil &&
				obj.Type().String() == "error" {
				errObj = obj
			}
		}
	}
	for i, kind := range kinds {
		if kind == NoResource || i >= len(s.Lhs) {
			continue
		}
		id, isIdent := s.Lhs[i].(*ast.Ident)
		if !isIdent || id.Name == "_" {
			continue
		}
		obj := lw.pass.ObjectOf(id)
		if obj == nil {
			continue
		}
		state[obj] = &openRes{kind: kind, pos: call.Pos(), errObj: errObj}
	}
}

// closeScan releases resources the subtree closes: x.Close(),
// x.Stop(), x.Body.Close(), or passing x to a callee whose summary
// closes that parameter.
func (lw *leakWalker) closeScan(state leakState, root ast.Node) {
	ast.Inspect(root, func(nd ast.Node) bool {
		call, isCall := nd.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if recv, name, ok := methodCall(lw.pass, call); ok && (name == "Close" || name == "Stop") {
			base := recv
			if se, isSel := ast.Unparen(recv).(*ast.SelectorExpr); isSel && se.Sel.Name == "Body" {
				base = se.X
			}
			if id, isIdent := ast.Unparen(base).(*ast.Ident); isIdent {
				if obj := lw.pass.ObjectOf(id); obj != nil {
					delete(state, obj)
				}
			}
		}
		if callee := lw.mp.Facts.Graph.resolveCallee(lw.pass.Pkg, call); callee != nil &&
			callee.Summary.ClosesParams != 0 {
			for ai, arg := range call.Args {
				if ai >= 64 || callee.Summary.ClosesParams&(1<<ai) == 0 {
					continue
				}
				if id, isIdent := ast.Unparen(arg).(*ast.Ident); isIdent {
					if obj := lw.pass.ObjectOf(id); obj != nil {
						delete(state, obj)
					}
				}
			}
		}
		return true
	})
}

// escape releases tracking for resources the expression hands away
// whole: a bare identifier (aliased, returned, passed, stored, sent,
// captured) transfers ownership; `x.Body` / `x.Field` / `x.Method()`
// uses do not.
func (lw *leakWalker) escape(state leakState, root ast.Node) {
	if root == nil || len(state) == 0 {
		return
	}
	ast.Inspect(root, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.SelectorExpr:
			if id, isIdent := ast.Unparen(nd.X).(*ast.Ident); isIdent {
				if obj := lw.pass.ObjectOf(id); obj != nil {
					if _, open := state[obj]; open {
						return false // usage of a field/method, not an escape
					}
				}
			}
		case *ast.FuncLit:
			// A closure that closes the resource releases it; any other
			// capture is an escape — keep inspecting its body either way.
			lw.closeScan(state, nd.Body)
			return true
		case *ast.Ident:
			if obj := lw.pass.ObjectOf(nd); obj != nil {
				delete(state, obj)
			}
		}
		return true
	})
}

// timeAfterInLoop flags `<-time.After(d)` inside a for/range loop
// (typically in a select): one timer allocation per iteration, alive
// until it fires.
func timeAfterInLoop(mp *ModulePass, n *FuncNode) {
	pass := &Pass{Pkg: n.Pkg}
	var loops func(node ast.Node, inLoop bool)
	loops = func(node ast.Node, inLoop bool) {
		ast.Inspect(node, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.ForStmt:
				loops(nd.Body, true)
				return false
			case *ast.RangeStmt:
				loops(nd.Body, true)
				return false
			case *ast.CallExpr:
				if !inLoop {
					return true
				}
				if pkgPath, name, ok := pkgFuncCall(pass, n.File, nd); ok &&
					pkgPath == "time" && name == "After" {
					chain := []ChainFrame{mp.Facts.frame(nd.Pos(), n.Key, "time.After per loop iteration")}
					mp.Report(nd.Pos(), chain,
						"time.After in a loop allocates a timer every iteration that lives until it fires; hoist a time.NewTimer/NewTicker and Stop it")
				}
			}
			return true
		})
	}
	loops(n.Decl.Body, false)
}
