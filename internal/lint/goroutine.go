package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerGoFunc enforces goroutine hygiene in the long-lived
// packages (engine, events, journal, retry, obs): every `go`
// statement must be cancelable or tracked — the spawned function
// takes or captures a context.Context, or its lifetime is accounted
// for by a sync.WaitGroup (Add before the spawn / Done inside the
// body). Untracked goroutines in daemon-lifetime code are how
// shutdown deadlocks and goroutine leaks start; the engine's own
// chaos suite asserts zero leaked goroutines after Shutdown.
var AnalyzerGoFunc = &Analyzer{
	Name: "gofunc",
	Doc:  "goroutine in a long-lived package that is neither context-aware nor WaitGroup-tracked",
	Run:  runGoFunc,
}

func runGoFunc(pass *Pass) {
	if !pass.Config.LongLived(pass.Pkg) {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, isGo := n.(*ast.GoStmt)
			if !isGo {
				return true
			}
			if goStmtTracked(pass, gs) {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine is neither context-aware nor WaitGroup-tracked: take/capture a context.Context or pair it with wg.Add/wg.Done so shutdown can account for it")
			return true
		})
	}
}

func goStmtTracked(pass *Pass, gs *ast.GoStmt) bool {
	// An argument of type context.Context makes the goroutine
	// cancelable regardless of what is being called.
	for _, arg := range gs.Call.Args {
		if isContextType(pass.TypeOf(arg)) {
			return true
		}
	}
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		for _, field := range fun.Type.Params.List {
			if isContextType(pass.TypeOf(field.Type)) {
				return true
			}
		}
		return bodyTracked(pass, fun.Body)
	default:
		// Named function or method: cancelable if its signature takes
		// a context (the caller must then be passing one — covered by
		// the argument scan above for direct calls; bound methods and
		// conversions fall through to the signature check).
		if sig, isSig := pass.TypeOf(gs.Call.Fun).(*types.Signature); isSig {
			for i := 0; i < sig.Params().Len(); i++ {
				if isContextType(sig.Params().At(i).Type()) {
					return true
				}
			}
		}
		// Same-package callee: tracked if its body is (`go e.worker()`
		// where worker starts with `defer e.wg.Done()`).
		if body := calleeBody(pass, gs.Call.Fun); body != nil {
			return bodyTracked(pass, body)
		}
	}
	return false
}

// calleeBody resolves fun to a function or method declared in the
// package under analysis and returns its body, or nil.
func calleeBody(pass *Pass, fun ast.Expr) *ast.BlockStmt {
	var id *ast.Ident
	switch fun := fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj := pass.ObjectOf(id)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pass.Pkg.PkgPath {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil || fd.Name.Name != id.Name {
				continue
			}
			if pass.ObjectOf(fd.Name) == obj {
				return fd.Body
			}
		}
	}
	return nil
}

// bodyTracked reports whether the goroutine body references a
// context.Context value (captured ctx: select on ctx.Done(), passes
// it on) or is WaitGroup-tracked (calls Done/Add on a
// sync.WaitGroup).
func bodyTracked(pass *Pass, body *ast.BlockStmt) bool {
	tracked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tracked {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.ObjectOf(n); obj != nil && isContextType(obj.Type()) {
				tracked = true
				return false
			}
		case *ast.CallExpr:
			if _, name, ok := methodCall(pass, n); ok && (name == "Done" || name == "Add") &&
				recvTypeIs(pass, n, "sync.WaitGroup") {
				tracked = true
				return false
			}
		}
		return true
	})
	return tracked
}

func isContextType(t types.Type) bool {
	return namedType(t) == "context.Context"
}
