package lint

import (
	"encoding/json"
	"io"
)

// SARIF 2.1.0 output (`pdflint -format sarif` / -sarif <file>): the
// subset of the schema CI code-scanning uploads consume — one run,
// one rule per analyzer, one result per diagnostic, with the
// interprocedural provenance chain rendered as a codeFlow so viewers
// show the whole call chain behind a finding.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	RuleIndex           int               `json:"ruleIndex"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints,omitempty"`
	CodeFlows           []sarifCodeFlow   `json:"codeFlows,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifMessage `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifCodeFlow struct {
	ThreadFlows []sarifThreadFlow `json:"threadFlows"`
}

type sarifThreadFlow struct {
	Locations []sarifThreadFlowLoc `json:"locations"`
}

type sarifThreadFlowLoc struct {
	Location sarifLocation `json:"location"`
}

// SARIF converts the (already relativized) report. Rules list every
// known analyzer in presentation order so ruleIndex is stable whether
// or not an analyzer fired.
func (rep *JSONReport) SARIF() *sarifLog {
	analyzers := Analyzers()
	rules := make([]sarifRule, len(analyzers))
	ruleIndex := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		rules[i] = sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}}
		ruleIndex[a.Name] = i
	}
	results := make([]sarifResult, 0, len(rep.Diagnostics))
	for _, d := range rep.Diagnostics {
		r := sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		}
		if d.ID != "" {
			r.PartialFingerprints = map[string]string{"pdflintFindingId": d.ID}
		}
		if len(d.Chain) > 0 {
			locs := make([]sarifThreadFlowLoc, 0, len(d.Chain))
			for _, f := range d.Chain {
				locs = append(locs, sarifThreadFlowLoc{Location: sarifLocation{
					PhysicalLocation: sarifPhysical{
						ArtifactLocation: sarifArtifact{URI: f.File},
						Region:           sarifRegion{StartLine: f.Line},
					},
					Message: &sarifMessage{Text: f.Func + ": " + f.Note},
				}})
			}
			r.CodeFlows = []sarifCodeFlow{{ThreadFlows: []sarifThreadFlow{{Locations: locs}}}}
		}
		results = append(results, r)
	}
	return &sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "pdflint", Rules: rules}},
			Results: results,
		}},
	}
}

// WriteSARIF renders the report as an indented SARIF 2.1.0 document.
func (rep *JSONReport) WriteSARIF(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep.SARIF())
}
