package lint

import (
	"go/ast"
)

// AnalyzerCtxFlow enforces cancellation plumbing in long-lived
// packages: a function that receives a context.Context must thread it
// into every blocking callee that accepts one — calling a callee the
// facts engine proved blocking (directly or transitively) with a
// fresh context.Background()/context.TODO() severs the caller's
// cancellation chain, and a daemon shutdown then hangs on that call.
// The diagnostic's chain shows why the callee blocks.
var AnalyzerCtxFlow = &Analyzer{
	Name:      "ctxflow",
	Doc:       "context.Context received but a blocking callee gets context.Background()/TODO()",
	RunModule: runCtxFlow,
}

func runCtxFlow(mp *ModulePass) {
	for _, n := range mp.Facts.Graph.Nodes {
		if !mp.Config.LongLived(n.Pkg) || len(n.Summary.CtxParams) == 0 {
			continue
		}
		pass := &Pass{Pkg: n.Pkg}
		for _, cs := range n.Calls {
			callee := cs.Callee
			if !callee.Summary.Blocking || len(callee.Summary.CtxParams) == 0 {
				continue
			}
			ctxIdx := callee.Summary.CtxParams[0]
			if ctxIdx >= len(cs.Call.Args) {
				continue
			}
			arg := cs.Call.Args[ctxIdx]
			if !isFreshContext(pass, n.File, arg) {
				continue
			}
			chain := []ChainFrame{mp.Facts.frame(cs.Pos, n.Key, "calls "+shortKey(callee.Key)+" with a fresh context")}
			chain = append(chain, mp.Facts.BlockingChain(callee)...)
			mp.Report(arg.Pos(), chain,
				"%s receives a context.Context but calls blocking %s with %s; thread the caller's ctx so cancellation reaches it (blocks via %s)",
				shortKey(n.Key), shortKey(callee.Key), exprString(arg), callee.Summary.BlockingWhy)
		}
	}
}

// isFreshContext reports whether arg is a context.Background() or
// context.TODO() call — a cancellation chain deliberately cut.
func isFreshContext(pass *Pass, file *ast.File, arg ast.Expr) bool {
	call, isCall := ast.Unparen(arg).(*ast.CallExpr)
	if !isCall {
		return false
	}
	pkgPath, name, ok := pkgFuncCall(pass, file, call)
	return ok && pkgPath == "context" && (name == "Background" || name == "TODO")
}
