package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// metricNameRE is the Prometheus text-format metric name grammar.
var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// labelNameRE is the Prometheus label name grammar.
var labelNameRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// obsConstructors maps the internal/obs registration entry points to
// the index of their metric-name argument.
var obsConstructors = map[string]int{
	"NewCounterVec":   0,
	"NewCounterFunc":  0,
	"NewGaugeFunc":    0,
	"NewGaugeVec":     0,
	"NewHistogram":    0,
	"NewHistogramVec": 0,
}

// AnalyzerMetricName checks every internal/obs metric registration
// site: the metric name must be a constant-foldable string (basic
// literal, const, or concatenation of those — the registry's /metrics
// exposition never re-validates at scrape time) matching the
// Prometheus text-format grammar, and vector label names must match
// the label grammar. A malformed name silently corrupts the whole
// exposition for every scraper.
var AnalyzerMetricName = &Analyzer{
	Name: "metricname",
	Doc:  "non-constant or grammar-violating Prometheus metric/label name at an obs registration site",
	Run:  runMetricName,
}

func runMetricName(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			name, ok := obsConstructorCall(pass, file, call)
			if !ok {
				return true
			}
			argIdx := obsConstructors[name]
			if len(call.Args) <= argIdx {
				return true
			}
			arg := call.Args[argIdx]
			metric, isConst := constString(pass, arg)
			if !isConst {
				pass.Reportf(arg.Pos(),
					"obs.%s metric name must be a constant-foldable string (the registry never re-validates at scrape time)", name)
			} else if !metricNameRE.MatchString(metric) {
				pass.Reportf(arg.Pos(),
					"metric name %q does not match the Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]*", metric)
			}
			checkLabelArgs(pass, name, call)
			return true
		})
	}
}

// obsConstructorCall matches both obs.NewCounterVec(...) from other
// packages and plain NewCounterVec(...) inside internal/obs itself.
func obsConstructorCall(pass *Pass, file *ast.File, call *ast.CallExpr) (string, bool) {
	if pkgPath, name, ok := pkgFuncCall(pass, file, call); ok {
		if _, known := obsConstructors[name]; known && pkgPath == pass.Config.ObsPkg {
			return name, true
		}
		return "", false
	}
	if pass.Pkg.PkgPath != pass.Config.ObsPkg {
		return "", false
	}
	id, isIdent := call.Fun.(*ast.Ident)
	if !isIdent {
		return "", false
	}
	if _, known := obsConstructors[id.Name]; known {
		return id.Name, true
	}
	return "", false
}

// checkLabelArgs validates the variadic label names of the *Vec
// constructors.
func checkLabelArgs(pass *Pass, ctor string, call *ast.CallExpr) {
	var labelStart int
	switch ctor {
	case "NewCounterVec", "NewGaugeVec":
		labelStart = 2 // (name, help, labels...)
	case "NewHistogramVec":
		labelStart = 3 // (name, help, buckets, labels...)
	default:
		return
	}
	for i := labelStart; i < len(call.Args); i++ {
		label, isConst := constString(pass, call.Args[i])
		if !isConst {
			pass.Reportf(call.Args[i].Pos(), "obs.%s label name must be a constant-foldable string", ctor)
			continue
		}
		if !labelNameRE.MatchString(label) {
			pass.Reportf(call.Args[i].Pos(),
				"label name %q does not match the Prometheus grammar [a-zA-Z_][a-zA-Z0-9_]*", label)
		}
	}
}

// constString returns the constant-folded string value of expr, if
// the type checker could fold it.
func constString(pass *Pass, expr ast.Expr) (string, bool) {
	if pass.Pkg.Info == nil {
		return "", false
	}
	tv, found := pass.Pkg.Info.Types[expr]
	if !found || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// AnalyzerSpanEnd checks that every span returned by obs.StartSpan is
// ended in the function that started it — via defer or on every exit
// path the function owns. A span stored into a struct field is
// excluded (the engine's job root/queued spans end in other methods);
// a span assigned to the blank identifier or a dropped return value
// can never end and is always a finding. Unended spans hold their
// slot in the per-trace cap forever and report zero duration in
// /v1/jobs/{id}/trace.
var AnalyzerSpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "obs.StartSpan whose span is discarded or never .End()ed in the starting function",
	Run:  runSpanEnd,
}

func runSpanEnd(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		funcBodies(file, func(name string, body *ast.BlockStmt) {
			runSpanEndFunc(pass, file, body)
		})
	}
}

func runSpanEndFunc(pass *Pass, file *ast.File, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n.Pos() != body.Pos() {
			return false // analyzed as its own frame
		}
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, isCall := n.X.(*ast.CallExpr); isCall && isStartSpan(pass, file, call) {
				pass.Reportf(call.Pos(), "StartSpan result discarded: the span can never End")
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, isCall := rhs.(*ast.CallExpr)
				if !isCall || !isStartSpan(pass, file, call) {
					continue
				}
				if len(n.Rhs) != 1 || len(n.Lhs) != 2 {
					continue
				}
				checkSpanLHS(pass, body, n.Lhs[1], call)
			}
		}
		return true
	})
}

func checkSpanLHS(pass *Pass, body *ast.BlockStmt, lhs ast.Expr, call *ast.CallExpr) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			pass.Reportf(call.Pos(), "span assigned to _: it can never End")
			return
		}
		obj := pass.ObjectOf(lhs)
		if obj == nil {
			return
		}
		if _, isField := obj.(*types.Var); isField && obj.Parent() == nil {
			return // struct field via composite literal — out of scope
		}
		if !spanEnded(pass, body, obj) {
			pass.Reportf(call.Pos(),
				"span %s is never .End()ed in this function (use defer %s.End() or end it on every path)",
				lhs.Name, lhs.Name)
		}
	case *ast.SelectorExpr:
		// Stored into a field: lifetime escapes this function; the
		// trace-nesting tests cover those spans end-to-end.
	}
}

// spanEnded reports whether obj has a .End(...) call anywhere in the
// function body (direct, deferred, or inside a nested literal — a
// deferred closure ending the span counts).
func spanEnded(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	ended := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ended {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		se, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel || se.Sel.Name != "End" {
			return true
		}
		if id, isIdent := se.X.(*ast.Ident); isIdent && pass.ObjectOf(id) == obj {
			ended = true
			return false
		}
		return true
	})
	return ended
}

func isStartSpan(pass *Pass, file *ast.File, call *ast.CallExpr) bool {
	pkgPath, name, ok := pkgFuncCall(pass, file, call)
	if ok {
		return name == "StartSpan" && pkgPath == pass.Config.ObsPkg
	}
	return false
}

// AnalyzerErrEnvelope forbids http.Error in the engine package: every
// error response must go through the unified {"error":{code,...}}
// envelope helper so clients always get a machine-readable code and
// Retry-After semantics. http.Error writes text/plain with none of
// that, silently breaking every client that switches on the code.
var AnalyzerErrEnvelope = &Analyzer{
	Name: "errenvelope",
	Doc:  "http.Error in an engine HTTP handler instead of the unified error envelope",
	Run:  runErrEnvelope,
}

func runErrEnvelope(pass *Pass) {
	if !pass.Config.Engine(pass.Pkg) {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			pkgPath, name, ok := pkgFuncCall(pass, file, call)
			if ok && pkgPath == "net/http" && name == "Error" {
				pass.Reportf(call.Pos(),
					"http.Error bypasses the /v1 error envelope: use writeError (code + message + retry_after_ms) instead")
			}
			return true
		})
	}
}
