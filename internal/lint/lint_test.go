package lint_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// fixtureNames lists the fixture packages under testdata/src, one per
// analyzer.
var fixtureNames = []string{
	"rand", "timenow", "maporder", "locks",
	"gofunc", "metricname", "spanend", "errenvelope",
	"coordenvelope", "fsyncdir", "tracepropagation",
	"lockorder", "ctxflow", "ctxflow/dep",
	"nondetflow", "nondetflow/dep", "closeleak",
}

const fixturePathPrefix = "repro/internal/lint/testdata/src/"

var fixtureCache struct {
	once sync.Once
	pkgs []*lint.Package
	err  error
}

// loadFixtures loads internal/obs (the fixtures' only module-local
// dependency) plus every fixture package, and returns the fixture
// packages with a config that scopes each analyzer onto them. The
// load is cached across tests: packages are read-only after loading.
func loadFixtures(t *testing.T) ([]*lint.Package, *lint.Config) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	fixtureCache.once.Do(func() {
		var extra []string
		for _, name := range fixtureNames {
			extra = append(extra, filepath.Join(root, "internal/lint/testdata/src", name))
		}
		fixtureCache.pkgs, fixtureCache.err = lint.LoadModule(root, &lint.LoadOptions{
			Only:      []string{"internal/obs"},
			ExtraDirs: extra,
		})
	})
	pkgs, err := fixtureCache.pkgs, fixtureCache.err
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	var fixtures []*lint.Package
	for _, p := range pkgs {
		if strings.HasPrefix(p.PkgPath, fixturePathPrefix) {
			if len(p.TypeErrors) > 0 {
				t.Fatalf("fixture %s has type errors: %v", p.PkgPath, p.TypeErrors)
			}
			fixtures = append(fixtures, p)
		}
	}
	if len(fixtures) != len(fixtureNames) {
		t.Fatalf("loaded %d fixture packages, want %d", len(fixtures), len(fixtureNames))
	}
	cfg := &lint.Config{
		DeterministicPkgs: []string{
			fixturePathPrefix + "rand",
			fixturePathPrefix + "timenow",
			fixturePathPrefix + "maporder",
		},
		LongLivedPkgs: []string{
			fixturePathPrefix + "gofunc",
			fixturePathPrefix + "ctxflow",
		},
		EnginePkgs: []string{
			fixturePathPrefix + "errenvelope",
			fixturePathPrefix + "coordenvelope",
		},
		DurablePkgs:   []string{fixturePathPrefix + "fsyncdir"},
		ClusterPkgs:   []string{fixturePathPrefix + "tracepropagation"},
		ObsPkg:        "repro/internal/obs",
		LockOrderPkgs: []string{fixturePathPrefix + "lockorder"},
		ResourcePkgs:  []string{fixturePathPrefix + "closeleak"},
		NondetSinks: map[string][]int{
			fixturePathPrefix + "nondetflow.Digest": nil,
			fixturePathPrefix + "nondetflow.Put":    {0},
		},
	}
	return fixtures, cfg
}

// wantRE extracts the backtick-quoted expectation regexes of a
// `// want ...` comment.
var wantRE = regexp.MustCompile("// want (`[^`]+`(?: `[^`]+`)*)")

// collectWants maps "file:line" to the expectation regexes on that
// line.
func collectWants(t *testing.T, pkgs []*lint.Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, q := range strings.Split(m[1], "` `") {
						q = strings.Trim(q, "`")
						re, err := regexp.Compile(q)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, q, err)
						}
						wants[key] = append(wants[key], re)
					}
				}
			}
		}
	}
	return wants
}

// TestFixtureGolden asserts the exact diagnostic set over the fixture
// packages: every `// want` expectation fires, nothing unexpected
// fires, every analyzer fires at least once, and the run is not clean
// (so a deliberately seeded violation fails make check via pdflint's
// nonzero exit).
func TestFixtureGolden(t *testing.T) {
	fixtures, cfg := loadFixtures(t)
	res := lint.Run(fixtures, lint.Analyzers(), cfg)

	wants := collectWants(t, fixtures)
	if len(wants) == 0 {
		t.Fatal("no // want expectations found in fixtures")
	}

	matched := make(map[string][]bool) // key -> per-want matched
	for k, ws := range wants {
		matched[k] = make([]bool, len(ws))
	}
	for _, d := range res.Diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		ws, ok := wants[key]
		if !ok {
			t.Errorf("unexpected diagnostic %s", d)
			continue
		}
		hit := false
		for i, re := range ws {
			if re.MatchString(d.Message) {
				matched[key][i] = true
				hit = true
			}
		}
		if !hit {
			t.Errorf("diagnostic %s matches no want on its line", d)
		}
	}
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for i, ok := range matched[k] {
			if !ok {
				t.Errorf("%s: want %q never matched", k, wants[k][i].String())
			}
		}
	}

	// Every analyzer must demonstrably fire on its fixture.
	fired := make(map[string]int)
	for _, d := range res.Diags {
		fired[d.Analyzer]++
	}
	for _, a := range lint.Analyzers() {
		if fired[a.Name] == 0 {
			t.Errorf("analyzer %s produced no diagnostic on its fixture", a.Name)
		}
	}

	// Seeded violations must make the run (and so make check) fail.
	if len(res.Diags) == 0 {
		t.Fatal("fixture run is clean; pdflint would exit 0 and make check would pass a violation")
	}
}

// TestIgnoreSuppressesWithReason asserts //lint:ignore removes the
// diagnostic and records the analyzer and reason.
func TestIgnoreSuppressesWithReason(t *testing.T) {
	fixtures, cfg := loadFixtures(t)
	res := lint.Run(fixtures, lint.Analyzers(), cfg)

	const wantReason = "fixture demonstrates suppression"
	found := false
	for _, s := range res.Suppressed {
		if s.Analyzer == "rand" && s.Reason == wantReason {
			found = true
			if !strings.Contains(s.Message, "math/rand.Float64") {
				t.Errorf("suppression recorded wrong message: %q", s.Message)
			}
		}
	}
	if !found {
		t.Fatalf("no suppression with reason %q recorded; got %+v", wantReason, res.Suppressed)
	}
	for _, d := range res.Diags {
		if d.Analyzer == "rand" && strings.Contains(d.Message, "Float64") {
			t.Errorf("suppressed diagnostic still reported: %s", d)
		}
	}

	// The same regime must hold for the module-level (interprocedural)
	// analyzers, whose findings land in any file of the module: the
	// closeleak fixture suppresses a real os.File leak in place.
	const wantModReason = "fixture demonstrates interprocedural suppression"
	found = false
	for _, s := range res.Suppressed {
		if s.Analyzer == "closeleak" && s.Reason == wantModReason {
			found = true
			if !strings.Contains(s.Message, "os.File") {
				t.Errorf("closeleak suppression recorded wrong message: %q", s.Message)
			}
		}
	}
	if !found {
		t.Fatalf("no closeleak suppression with reason %q recorded", wantModReason)
	}
	for _, d := range res.Diags {
		if d.Analyzer == "closeleak" && d.Line > 0 &&
			strings.Contains(d.Message, `"f"`) && strings.Contains(d.File, "closeleak") {
			t.Errorf("suppressed closeleak diagnostic still reported: %s", d)
		}
	}
}

// TestSelect covers the per-analyzer enable/disable flags.
func TestSelect(t *testing.T) {
	all, err := lint.Select("", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(lint.Analyzers()) {
		t.Fatalf("Select(\"\",\"\") returned %d analyzers, want %d", len(all), len(lint.Analyzers()))
	}
	only, err := lint.Select("locks,maporder", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(only) != 2 || only[0].Name != "locks" || only[1].Name != "maporder" {
		t.Fatalf("Select enable: got %v", names(only))
	}
	without, err := lint.Select("", "timenow")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range without {
		if a.Name == "timenow" {
			t.Fatal("disabled analyzer still selected")
		}
	}
	if len(without) != len(lint.Analyzers())-1 {
		t.Fatalf("Select disable: got %d analyzers", len(without))
	}
	if _, err := lint.Select("nosuch", ""); err == nil {
		t.Fatal("Select accepted an unknown analyzer name")
	}
	if _, err := lint.Select("", "nosuch"); err == nil {
		t.Fatal("Select accepted an unknown analyzer name in -disable")
	}
}

func names(as []*lint.Analyzer) []string {
	var out []string
	for _, a := range as {
		out = append(out, a.Name)
	}
	return out
}

// TestDisabledAnalyzerReportsNothing runs the fixture set with one
// analyzer disabled and asserts its findings are gone.
func TestDisabledAnalyzerReportsNothing(t *testing.T) {
	fixtures, cfg := loadFixtures(t)
	sel, err := lint.Select("", "maporder")
	if err != nil {
		t.Fatal(err)
	}
	res := lint.Run(fixtures, sel, cfg)
	for _, d := range res.Diags {
		if d.Analyzer == "maporder" {
			t.Fatalf("disabled analyzer still reported: %s", d)
		}
	}
}

// TestJSONReport pins the -json schema documented in API.md: version,
// clean flag, sorted diagnostics with repo-relative paths, recorded
// suppressions, per-analyzer counts.
func TestJSONReport(t *testing.T) {
	fixtures, cfg := loadFixtures(t)
	res := lint.Run(fixtures, lint.Analyzers(), cfg)
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report(root)

	if rep.Version != 2 {
		t.Errorf("schema version = %d, want 2", rep.Version)
	}
	if rep.Clean {
		t.Error("fixture report claims clean")
	}
	if len(rep.Diagnostics) != len(res.Diags) {
		t.Errorf("report has %d diagnostics, result has %d", len(rep.Diagnostics), len(res.Diags))
	}
	for _, d := range rep.Diagnostics {
		if filepath.IsAbs(d.File) {
			t.Errorf("diagnostic path not repo-relative: %s", d.File)
		}
		if !strings.HasPrefix(d.File, "internal/lint/testdata/src/") {
			t.Errorf("unexpected diagnostic path %s", d.File)
		}
	}
	total := 0
	for _, n := range rep.Counts {
		total += n
	}
	if total != len(rep.Diagnostics) {
		t.Errorf("counts sum to %d, want %d", total, len(rep.Diagnostics))
	}
	if len(rep.Suppressed) == 0 {
		t.Error("report lost the recorded suppressions")
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round struct {
		Version     int                `json:"version"`
		Clean       bool               `json:"clean"`
		Diagnostics []json.RawMessage  `json:"diagnostics"`
		Suppressed  []lint.Suppression `json:"suppressed"`
		Counts      map[string]int     `json:"counts"`
	}
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if round.Version != 2 || round.Clean || len(round.Diagnostics) != len(rep.Diagnostics) {
		t.Errorf("JSON roundtrip mismatch: version=%d clean=%v diags=%d",
			round.Version, round.Clean, len(round.Diagnostics))
	}

	// Text form: one file:line:col: [analyzer] line per diagnostic.
	var txt bytes.Buffer
	rep.WriteText(&txt, false)
	first := rep.Diagnostics[0]
	wantLine := fmt.Sprintf("%s:%d:%d: [%s]", first.File, first.Line, first.Col, first.Analyzer)
	if !strings.Contains(txt.String(), wantLine) {
		t.Errorf("text output missing %q:\n%s", wantLine, txt.String())
	}
}

// TestFindingIDsAndChains pins the schema-v2 additions: every
// diagnostic carries a stable 12-hex finding id (the -why handle),
// ids are unique across the run, and the interprocedural analyzers
// attach a provenance chain whose frames name function, file and line.
func TestFindingIDsAndChains(t *testing.T) {
	fixtures, cfg := loadFixtures(t)
	res := lint.Run(fixtures, lint.Analyzers(), cfg)
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report(root)

	idRE := regexp.MustCompile(`^[0-9a-f]{12}$`)
	seen := make(map[string]string)
	chained := make(map[string]bool)
	for _, d := range rep.Diagnostics {
		if !idRE.MatchString(d.ID) {
			t.Errorf("diagnostic %s:%d has malformed id %q", d.File, d.Line, d.ID)
		}
		if prev, dup := seen[d.ID]; dup {
			t.Errorf("finding id %s assigned to both %q and %q", d.ID, prev, d.Message)
		}
		seen[d.ID] = d.Message
		if got := lint.FindingID(d); got != d.ID {
			t.Errorf("FindingID not reproducible: report says %s, recompute says %s", d.ID, got)
		}
		for _, f := range d.Chain {
			if f.Func == "" || f.File == "" || f.Line <= 0 || f.Note == "" {
				t.Errorf("diagnostic %s has incomplete chain frame %+v", d.ID, f)
			}
			if filepath.IsAbs(f.File) {
				t.Errorf("chain frame path not repo-relative: %s", f.File)
			}
		}
		if len(d.Chain) > 0 {
			chained[d.Analyzer] = true
		}
	}
	// The interprocedural analyzers must explain themselves: each one
	// attaches a chain to at least one fixture finding.
	for _, a := range []string{"lockorder", "ctxflow", "nondetflow", "closeleak"} {
		if !chained[a] {
			t.Errorf("analyzer %s attached no provenance chain on its fixture", a)
		}
	}
}

// TestSARIFRoundTrip emits the SARIF 2.1.0 form of the fixture report
// and re-parses it: schema pinned, one run, every analyzer present as
// a rule, one result per diagnostic with matching rule linkage,
// location and fingerprint, and code flows mirroring the chains.
func TestSARIFRoundTrip(t *testing.T) {
	fixtures, cfg := loadFixtures(t)
	res := lint.Run(fixtures, lint.Analyzers(), cfg)
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report(root)

	var buf bytes.Buffer
	if err := rep.WriteSARIF(&buf); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				PartialFingerprints map[string]string `json:"partialFingerprints"`
				CodeFlows           []struct {
					ThreadFlows []struct {
						Locations []json.RawMessage `json:"locations"`
					} `json:"threadFlows"`
				} `json:"codeFlows"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF does not parse: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("SARIF version/schema = %q / %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("SARIF has %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "pdflint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIdx := make(map[string]int)
	for i, r := range run.Tool.Driver.Rules {
		ruleIdx[r.ID] = i
	}
	for _, a := range lint.Analyzers() {
		if _, ok := ruleIdx[a.Name]; !ok {
			t.Errorf("analyzer %s missing from SARIF rules", a.Name)
		}
	}
	if len(run.Results) != len(rep.Diagnostics) {
		t.Fatalf("SARIF has %d results, report has %d diagnostics",
			len(run.Results), len(rep.Diagnostics))
	}
	for i, r := range run.Results {
		d := rep.Diagnostics[i]
		if r.RuleID != d.Analyzer || r.RuleIndex != ruleIdx[d.Analyzer] {
			t.Errorf("result %d: ruleId=%q ruleIndex=%d, want %q %d",
				i, r.RuleID, r.RuleIndex, d.Analyzer, ruleIdx[d.Analyzer])
		}
		if r.Level != "error" || r.Message.Text != d.Message {
			t.Errorf("result %d: level=%q message mismatch", i, r.Level)
		}
		if len(r.Locations) != 1 ||
			r.Locations[0].PhysicalLocation.ArtifactLocation.URI != d.File ||
			r.Locations[0].PhysicalLocation.Region.StartLine != d.Line {
			t.Errorf("result %d: location does not match %s:%d", i, d.File, d.Line)
		}
		if r.PartialFingerprints["pdflintFindingId"] != d.ID {
			t.Errorf("result %d: fingerprint %q, want finding id %s",
				i, r.PartialFingerprints["pdflintFindingId"], d.ID)
		}
		if len(d.Chain) > 0 {
			if len(r.CodeFlows) != 1 || len(r.CodeFlows[0].ThreadFlows) != 1 ||
				len(r.CodeFlows[0].ThreadFlows[0].Locations) != len(d.Chain) {
				t.Errorf("result %d: code flow does not mirror the %d-frame chain", i, len(d.Chain))
			}
		} else if len(r.CodeFlows) != 0 {
			t.Errorf("result %d: chainless diagnostic grew a code flow", i)
		}
	}
}

// TestRepositoryClean is the acceptance gate in test form: pdflint
// over the whole module must be clean, so `make lint` (and with it
// `make check`) passes.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint skipped in -short mode")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root, nil)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	res := lint.Run(pkgs, lint.Analyzers(), lint.DefaultConfig())
	for _, d := range res.Diags {
		t.Errorf("repository not lint-clean: %s", d)
	}
	// The in-tree suppressions must all carry reasons.
	for _, s := range res.Suppressed {
		if s.Reason == "" || s.Reason == "(no reason given)" {
			t.Errorf("suppression without reason at %s:%d [%s]", s.File, s.Line, s.Analyzer)
		}
	}
}
