// Package lint is pdflint's hand-rolled static-analysis framework: a
// stdlib-only driver (go/parser + go/ast + go/types, no x/tools) that
// loads every package of the module and runs project-specific
// analyzers over the type-checked ASTs.
//
// The checks encode invariants the rest of the repository depends on
// but the compiler cannot see:
//
//   - determinism: the generation pipeline (internal/core,
//     internal/justify, internal/faultsim, internal/pathenum,
//     internal/tval) must be bit-identical run to run — journal
//     replay, the engine result cache and the perfreg baseline all
//     key on digests of its output. No unseeded math/rand, no
//     time.Now outside telemetry-annotated call sites, no map
//     iteration feeding an ordered result without a sort.
//   - lock discipline: no channel operation or blocking call while a
//     sync.Mutex/RWMutex is held, and no Lock without a reachable
//     Unlock in the same function.
//   - goroutine hygiene: long-lived packages may only spawn
//     goroutines that are cancelable (take or capture a
//     context.Context) or tracked (WaitGroup).
//   - obs hygiene: metric names constant-foldable and well-formed at
//     registration sites, every StartSpan ended, engine handlers
//     answering errors through the unified envelope only.
//
// False positives are suppressed in place with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line above; the reason is recorded in
// the run result (and in -json output) so suppressions stay auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	// PkgPath is the import path ("repro/internal/core").
	PkgPath string
	// Dir is the directory the files were read from.
	Dir string
	// Fset positions every file of the load (shared across packages).
	Fset *token.FileSet
	// Files are the parsed non-test Go files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object (never nil, but
	// possibly incomplete if TypeErrors is non-empty).
	Types *types.Package
	// Info carries expression types, constant values, and uses/defs.
	Info *types.Info
	// TypeErrors are the (tolerated) type-checking errors; analysis
	// proceeds on partial information.
	TypeErrors []error

	imports []string // module-local imports, for topological loading
}

// ChainFrame is one step of a diagnostic's provenance: the function a
// propagated fact passed through and why. Interprocedural analyzers
// attach the full call chain that produced a finding (JSON schema v2,
// SARIF codeFlows, pdflint -why).
type ChainFrame struct {
	// Func is the function key in short form ("(*engine.Engine).Submit").
	Func string `json:"func"`
	// File/Line position the relevant call or operation.
	File string `json:"file"`
	Line int    `json:"line"`
	// Note says what the frame contributes ("calls journal.Append",
	// "time.Sleep", "acquires engine.Engine.mu").
	Note string `json:"note"`
}

// Diagnostic is one finding, positioned at file:line:col.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
	// ID is the stable finding identifier (hash of analyzer, relative
	// path, position and message), filled in by Result.Report; pdflint
	// -why resolves it back to this diagnostic's Chain.
	ID string `json:"id,omitempty"`
	// Chain is the interprocedural provenance, outermost frame first.
	// Empty for the intra-procedural analyzers.
	Chain []ChainFrame `json:"chain,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Suppression records a diagnostic that a //lint:ignore directive
// silenced, together with the contributor-supplied reason.
type Suppression struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
	Message  string `json:"message"`
}

// Analyzer is one named check. Exactly one of Run and RunModule is
// set: Run sees one package at a time, RunModule sees the whole
// module through the facts engine.
type Analyzer struct {
	// Name is the flag / directive name ("maporder").
	Name string
	// Doc is the one-line description printed by pdflint -list.
	Doc string
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	Run func(pass *Pass)
	// RunModule inspects the whole module's facts (interprocedural
	// analyzers: lockorder, ctxflow, nondetflow, closeleak).
	RunModule func(mp *ModulePass)
}

// Pass is one (analyzer, package) execution.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Config   *Config

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass is one module-wide analyzer execution over the computed
// facts.
type ModulePass struct {
	Analyzer *Analyzer
	Facts    *Facts
	Config   *Config

	diags []Diagnostic
}

// Report records a diagnostic at pos with its provenance chain
// (outermost frame first; nil for chain-less findings).
func (mp *ModulePass) Report(pos token.Pos, chain []ChainFrame, format string, args ...any) {
	position := mp.Facts.Fset.Position(pos)
	mp.diags = append(mp.diags, Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: mp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// TypeOf returns the type of expr, or nil when type checking could
// not resolve it (analyzers degrade gracefully on partial info).
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.TypeOf(expr)
}

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Pkg.Info == nil {
		return nil
	}
	if o := p.Pkg.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// Config scopes the analyzers to the packages whose invariants they
// encode. Paths are import-path prefixes; DefaultConfig returns the
// project values and tests point them at fixture packages instead.
type Config struct {
	// DeterministicPkgs are the bit-identical generation packages the
	// rand / timenow / maporder analyzers police.
	DeterministicPkgs []string
	// LongLivedPkgs are the daemon-lifetime packages whose goroutines
	// must be cancelable or tracked (gofunc analyzer).
	LongLivedPkgs []string
	// EnginePkgs are the packages whose HTTP handlers must answer
	// errors through the unified envelope (errenvelope analyzer).
	EnginePkgs []string
	// DurablePkgs are the packages whose on-disk writes must survive a
	// crash: every os.Rename there needs a following parent-directory
	// fsync (fsyncdir analyzer).
	DurablePkgs []string
	// ClusterPkgs are the fleet-routing packages whose outbound HTTP
	// requests must carry trace propagation headers: http.NewRequest*
	// there may only appear inside the header-injecting helper
	// (tracepropagation analyzer).
	ClusterPkgs []string
	// ObsPkg is the import path of the observability package whose
	// metric constructors and StartSpan the obs analyzers recognize.
	ObsPkg string
	// LockOrderPkgs are the packages whose lock acquisitions feed the
	// global acquisition-order graph (lockorder analyzer).
	LockOrderPkgs []string
	// ResourcePkgs are the packages under close-on-all-paths
	// discipline for response bodies, files and tickers (closeleak
	// analyzer).
	ResourcePkgs []string
	// NondetSinks maps a determinism sink — a callee in go/types
	// FullName form ("repro/internal/engine.SpecDigest",
	// "(*repro/internal/store.Store).Put") — to the argument indices
	// that must stay deterministic. nil/empty indices mean every
	// argument (nondetflow analyzer).
	NondetSinks map[string][]int
}

// DefaultConfig returns the project scoping (see package comment).
func DefaultConfig() *Config {
	return &Config{
		DeterministicPkgs: []string{
			"repro/internal/core",
			"repro/internal/justify",
			"repro/internal/faultsim",
			"repro/internal/pathenum",
			"repro/internal/tval",
		},
		LongLivedPkgs: []string{
			"repro/internal/cluster",
			"repro/internal/engine",
			"repro/internal/events",
			"repro/internal/journal",
			"repro/internal/retry",
			"repro/internal/obs",
		},
		EnginePkgs: []string{
			"repro/internal/cluster",
			"repro/internal/engine",
		},
		DurablePkgs: []string{
			"repro/internal/journal",
			"repro/internal/store",
		},
		ClusterPkgs: []string{
			"repro/internal/cluster",
		},
		ObsPkg: "repro/internal/obs",
		LockOrderPkgs: []string{
			"repro/internal/engine",
			"repro/internal/cluster",
			"repro/internal/store",
			"repro/internal/journal",
		},
		ResourcePkgs: []string{
			"repro/internal",
			"repro/cmd",
			"repro/cli",
		},
		NondetSinks: map[string][]int{
			// Digests key the result cache, journal replay equivalence
			// and the perfreg baseline: every argument must be
			// deterministic.
			"repro/internal/engine.SpecDigest":    nil,
			"repro/internal/engine.CircuitDigest": nil,
			// Store and journal records replicate across the fleet;
			// their keys must be derivable, not wall-clock or rand.
			"(*repro/internal/store.Store).Put": {0},
			"(*repro/internal/store.Store).Get": {0},
			"(*repro/internal/journal.Log).Append": nil,
		},
	}
}

func matchesAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Deterministic reports whether pkg is under determinism discipline.
func (c *Config) Deterministic(pkg *Package) bool {
	return matchesAny(pkg.PkgPath, c.DeterministicPkgs)
}

// LongLived reports whether pkg must keep its goroutines cancelable.
func (c *Config) LongLived(pkg *Package) bool {
	return matchesAny(pkg.PkgPath, c.LongLivedPkgs)
}

// Engine reports whether pkg serves the /v1 error envelope.
func (c *Config) Engine(pkg *Package) bool {
	return matchesAny(pkg.PkgPath, c.EnginePkgs)
}

// Durable reports whether pkg is under crash-durability discipline.
func (c *Config) Durable(pkg *Package) bool {
	return matchesAny(pkg.PkgPath, c.DurablePkgs)
}

// Cluster reports whether pkg must route outbound requests through the
// trace-header-injecting helper.
func (c *Config) Cluster(pkg *Package) bool {
	return matchesAny(pkg.PkgPath, c.ClusterPkgs)
}

// LockOrdered reports whether pkg's lock acquisitions participate in
// the global acquisition-order graph.
func (c *Config) LockOrdered(pkg *Package) bool {
	return matchesAny(pkg.PkgPath, c.LockOrderPkgs)
}

// Resourceful reports whether pkg is under close-on-all-paths
// discipline.
func (c *Config) Resourceful(pkg *Package) bool {
	return matchesAny(pkg.PkgPath, c.ResourcePkgs)
}

// Analyzers returns every analyzer in stable (presentation) order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerRand,
		AnalyzerTimeNow,
		AnalyzerMapOrder,
		AnalyzerLocks,
		AnalyzerGoFunc,
		AnalyzerMetricName,
		AnalyzerSpanEnd,
		AnalyzerErrEnvelope,
		AnalyzerFsyncDir,
		AnalyzerTracePropagation,
		AnalyzerLockOrder,
		AnalyzerCtxFlow,
		AnalyzerNondetFlow,
		AnalyzerCloseLeak,
	}
}

// Select returns the analyzers to run given comma-separated enable
// and disable lists (empty enable means all). Unknown names error so
// a typo in -enable/-disable cannot silently skip a check.
func Select(enable, disable string) ([]*Analyzer, error) {
	all := Analyzers()
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	split := func(s string) ([]string, error) {
		var out []string
		for _, f := range strings.Split(s, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			if _, ok := byName[f]; !ok {
				return nil, fmt.Errorf("lint: unknown analyzer %q (run pdflint -list)", f)
			}
			out = append(out, f)
		}
		return out, nil
	}
	en, err := split(enable)
	if err != nil {
		return nil, err
	}
	dis, err := split(disable)
	if err != nil {
		return nil, err
	}
	disabled := make(map[string]bool, len(dis))
	for _, n := range dis {
		disabled[n] = true
	}
	var sel []*Analyzer
	if len(en) == 0 {
		for _, a := range all {
			if !disabled[a.Name] {
				sel = append(sel, a)
			}
		}
		return sel, nil
	}
	for _, n := range en {
		if !disabled[n] {
			sel = append(sel, byName[n])
		}
	}
	return sel, nil
}

// Result is one full run: surviving diagnostics (sorted by position)
// plus the suppressions that //lint:ignore directives recorded.
type Result struct {
	Diags      []Diagnostic
	Suppressed []Suppression
	// Facts is the interprocedural fact base, present when a module
	// analyzer ran (pdflint -facts dumps it).
	Facts *Facts
}

// Run executes the analyzers over the packages, applies //lint:ignore
// suppressions, and returns the sorted result. Per-package analyzers
// run first; when any module-wide analyzer is selected the facts
// engine runs once and every module analyzer shares its call graph
// and summaries.
func Run(pkgs []*Package, analyzers []*Analyzer, cfg *Config) *Result {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	res := &Result{}
	// Ignore directives are collected module-wide up front: module
	// analyzers position findings in any file, so matching must not
	// depend on which package loop we are in. File names are unique
	// across packages, so merging is safe.
	all := &ignoreSet{byFileLine: make(map[string]map[int]*ignoreDirective)}
	for _, pkg := range pkgs {
		for file, lines := range collectIgnores(pkg).byFileLine {
			all.byFileLine[file] = lines
		}
	}
	sift := func(diags []Diagnostic) {
		for _, d := range diags {
			if reason, ok := all.match(d); ok {
				res.Suppressed = append(res.Suppressed, Suppression{
					File: d.File, Line: d.Line, Analyzer: d.Analyzer,
					Reason: reason, Message: d.Message,
				})
				continue
			}
			res.Diags = append(res.Diags, d)
		}
	}
	var modAnalyzers []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			modAnalyzers = append(modAnalyzers, a)
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Pkg: pkg, Config: cfg}
			a.Run(pass)
			sift(pass.diags)
		}
	}
	if len(modAnalyzers) > 0 {
		facts := BuildFacts(pkgs, cfg)
		res.Facts = facts
		for _, a := range modAnalyzers {
			mp := &ModulePass{Analyzer: a, Facts: facts, Config: cfg}
			a.RunModule(mp)
			sift(mp.diags)
		}
	}
	sortDiags(res.Diags)
	sort.Slice(res.Suppressed, func(i, j int) bool {
		a, b := res.Suppressed[i], res.Suppressed[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return res
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}
