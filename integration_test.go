package repro_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/bitsim"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/faultsim"
	"repro/internal/justify"
	"repro/internal/pathenum"
	"repro/internal/robust"
	"repro/internal/synth"
	"repro/internal/testio"
	"repro/internal/timingsim"
)

// TestFullPipelineFromBenchFile drives the complete flow the way a
// downstream user would: a .bench netlist on disk in, a validated test
// set out.
func TestFullPipelineFromBenchFile(t *testing.T) {
	dir := t.TempDir()

	// 1. Write a netlist to disk (the embedded s27 plus a synthetic
	// circuit emitted through the writer).
	s27Path := filepath.Join(dir, "s27.bench")
	if err := os.WriteFile(s27Path, []byte(bench.S27Source), 0o644); err != nil {
		t.Fatal(err)
	}
	synthPath := filepath.Join(dir, "synth.bench")
	sc := synth.MustGenerate(synth.Profile{
		Name: "pipeline", Seed: 99, PIs: 12, Gates: 60, Levels: 8, MaxFanin: 3, InvFrac: 0.15,
	})
	sf, err := os.Create(synthPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.Write(sf, sc); err != nil {
		t.Fatal(err)
	}
	sf.Close()

	for _, file := range []string{s27Path, synthPath} {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			// 2. Parse and extract combinational logic.
			f, err := os.Open(file)
			if err != nil {
				t.Fatal(err)
			}
			c, err := bench.ParseCombinational(file, f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}

			// 3. Enumerate, screen, partition.
			d, err := experiments.PrepareCircuit(c, experiments.Params{NP: 500, NP0: 40, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(d.P0) == 0 {
				t.Skip("no detectable faults")
			}

			// 4. Generate the enriched test set.
			er := core.Enrich(c, d.P0, d.P1, core.Config{Seed: 1})
			if len(er.Tests) == 0 {
				t.Fatal("no tests generated")
			}

			// 5. Round-trip the test set and the fault list through
			// their file formats.
			testsFile := filepath.Join(dir, filepath.Base(file)+".tests")
			tf, err := os.Create(testsFile)
			if err != nil {
				t.Fatal(err)
			}
			if err := testio.WriteTests(tf, er.Tests); err != nil {
				t.Fatal(err)
			}
			tf.Close()
			tf2, err := os.Open(testsFile)
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := testio.ReadTests(tf2, len(c.PIs))
			tf2.Close()
			if err != nil {
				t.Fatal(err)
			}
			if len(loaded) != len(er.Tests) {
				t.Fatalf("test set round trip lost tests: %d vs %d", len(loaded), len(er.Tests))
			}

			// 6. Fault simulate the loaded tests with both simulators;
			// coverage must match the generation run's claim.
			all := d.All()
			scalar := faultsim.Count(c, loaded, all)
			parallel, err := bitsim.Count(c, loaded, all)
			if err != nil {
				t.Fatal(err)
			}
			if scalar != parallel {
				t.Fatalf("simulators disagree: %d vs %d", scalar, parallel)
			}
			if want := er.DetectedP0Count + er.DetectedP1Count; scalar != want {
				t.Fatalf("reloaded tests detect %d, generation claimed %d", scalar, want)
			}

			// 7. Validate one detection in the timing domain.
			var validated bool
			for i := range d.P0 {
				if !er.DetectedP0[i] {
					continue
				}
				j := justify.New(c, justify.Config{Seed: 5})
				test, ok := j.Justify(&d.P0[i].Alts[0])
				if !ok {
					continue
				}
				delays := timingsim.UniformDelays(c, 3)
				ff, err := timingsim.Simulate(c, delays, test)
				if err != nil {
					t.Fatal(err)
				}
				period := ff.SettleTime()
				faulty, err := timingsim.Simulate(c,
					delays.WithExtraOnPath(d.P0[i].Fault.Path, period+1), test)
				if err != nil {
					t.Fatal(err)
				}
				if !timingsim.Detected(faulty, d.P0[i].Fault.Path, period, ff) {
					t.Fatalf("timing validation failed for %s", d.P0[i].Fault.Format(c))
				}
				validated = true
				break
			}
			if !validated {
				t.Error("no fault timing-validated")
			}
		})
	}
}

// TestToolFormatsInterop checks that the fault list written from one
// enumeration is accepted and produces identical screening results.
func TestToolFormatsInterop(t *testing.T) {
	c := bench.S27()
	res, err := pathenum.Enumerate(c, pathenum.Config{Mode: pathenum.DistancePruned})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := testio.WriteFaults(&sb, c, res.Faults); err != nil {
		t.Fatal(err)
	}
	loaded, err := testio.ReadFaults(strings.NewReader(sb.String()), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	k1, e1 := robust.Screen(c, res.Faults)
	k2, e2 := robust.Screen(c, loaded)
	if len(k1) != len(k2) || e1 != e2 {
		t.Fatalf("screening diverges after round trip: %d/%d vs %d/%d",
			len(k1), e1, len(k2), e2)
	}
}

// TestSuiteSmoke runs the full evaluation suite at tiny budgets on two
// circuits to keep RunSuite covered.
func TestSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := experiments.Params{NP: 300, NP0: 60, Seed: 1}
	d1, err := experiments.Prepare("b09", p)
	if err != nil {
		t.Fatal(err)
	}
	row := experiments.BasicTable(d1, p)
	if row.P0Faults == 0 || row.Tests[3] == 0 {
		t.Fatalf("degenerate basic row: %+v", row)
	}
	er := experiments.EnrichTable(d1, p)
	if er.Tests == 0 || er.P0Detected == 0 {
		t.Fatalf("degenerate enrich row: %+v", er)
	}
	// Partition helpers stay consistent on the same data.
	raw := make([]faults.Fault, 0, len(d1.P0)+len(d1.P1))
	for _, fc := range d1.All() {
		raw = append(raw, fc.Fault)
	}
	p0, p1, _ := faults.Partition(raw, p.NP0)
	if len(p0) != len(d1.P0) || len(p1) != len(d1.P1) {
		t.Fatalf("partition mismatch: %d/%d vs %d/%d",
			len(p0), len(p1), len(d1.P0), len(d1.P1))
	}
}
