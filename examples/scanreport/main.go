// Scanreport: the paper (like most path delay fault ATPG work)
// generates tests for the combinational logic, implicitly assuming
// enhanced scan. This example measures what that assumption costs on a
// standard scan design: how many of the generated two-pattern tests
// survive broadside (launch-on-capture) or skewed-load
// (launch-on-shift) application.
//
//	go run ./examples/scanreport
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/scan"
	"repro/internal/synth"
)

func main() {
	// A synthetic sequential circuit: the b09 stand-in with 8 of its
	// inputs driven by flip-flops.
	src, err := synth.SequentialSource(synth.BenchmarkProfiles["b09"], 8)
	if err != nil {
		log.Fatal(err)
	}
	nl, err := bench.Parse("b09-seq", strings.NewReader(src))
	if err != nil {
		log.Fatal(err)
	}
	c, st, err := nl.CombinationalWithState()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d real inputs + %d flip-flops\n\n", c.Name, st.NumPI, st.NumFF())

	d, err := experiments.PrepareCircuit(c, experiments.Params{NP: 1000, NP0: 200, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	er := core.Enrich(c, d.P0, d.P1, core.Config{Seed: 1})
	fmt.Printf("enrichment: %d tests, P0 %d/%d, P0∪P1 %d/%d (enhanced-scan assumption)\n\n",
		len(er.Tests), er.DetectedP0Count, len(d.P0),
		er.DetectedP0Count+er.DetectedP1Count, len(d.P0)+len(d.P1))

	stats, err := scan.Analyze(c, st, er.Tests, scan.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application scheme   applicable tests\n")
	fmt.Printf("  enhanced scan      %4d / %d\n", stats.Enhanced, stats.Total)
	fmt.Printf("  broadside          %4d / %d\n", stats.Broadside, stats.Total)
	fmt.Printf("  skewed-load        %4d / %d\n", stats.SkewedLoad, stats.Total)
	fmt.Println("\nEvery test is applicable with enhanced scan; standard scan designs")
	fmt.Println("can apply only the survivors, which is why path delay ATPG assumes")
	fmt.Println("enhanced scan or constrains generation to the application scheme.")
}
