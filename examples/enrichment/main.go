// Enrichment: the paper's headline experiment on one circuit — how
// many next-to-longest-path faults (P1) does a compact test set for
// the longest-path faults (P0) detect *accidentally*, versus when the
// enrichment procedure targets them explicitly at no extra tests.
//
//	go run ./examples/enrichment [circuit]
//
// The optional argument is a stand-in profile name (default b09).
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faultsim"
)

func main() {
	name := "b09"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	p := experiments.DefaultParams()
	d, err := experiments.Prepare(name, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: |P0| = %d (longest paths), |P1| = %d (next-to-longest)\n\n",
		name, len(d.P0), len(d.P1))

	// Basic compact test set for P0 only.
	basic := core.Generate(d.Circuit, d.P0, core.Config{Heuristic: core.ValueBased, Seed: p.Seed})
	all := d.All()
	accidental := faultsim.Count(d.Circuit, basic.Tests, all)
	fmt.Printf("basic value-based procedure (targets P0 only):\n")
	fmt.Printf("  %4d tests, P0 detected %d/%d\n", len(basic.Tests), basic.DetectedCount, len(d.P0))
	fmt.Printf("  P0∪P1 detected (accidental): %d/%d\n\n", accidental, len(all))

	// Enrichment: same P0 objective, P1 detected "for free".
	er := core.Enrich(d.Circuit, d.P0, d.P1, core.Config{Seed: p.Seed})
	fmt.Printf("enrichment procedure (targets P0, opportunistically P1):\n")
	fmt.Printf("  %4d tests, P0 detected %d/%d\n", len(er.Tests), er.DetectedP0Count, len(d.P0))
	fmt.Printf("  P0∪P1 detected: %d/%d\n\n", er.DetectedP0Count+er.DetectedP1Count, len(all))

	extra := er.DetectedP0Count + er.DetectedP1Count - accidental
	fmt.Printf("=> %d additional faults detected with %+d tests\n",
		extra, len(er.Tests)-len(basic.Tests))
}
