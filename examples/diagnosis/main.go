// Diagnosis: closes the loop from test generation to failure analysis.
// A path delay defect is injected into a simulated device, the
// generated test set is "applied on the tester" via the timing
// simulator, and the pass/fail syndrome is fed back to the diagnosis
// engine, which ranks candidate faults.
//
//	go run ./examples/diagnosis
//
// The enriched test set both catches and localizes defects on
// next-to-longest paths that a P0-only test set would miss entirely.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/experiments"
	"repro/internal/timingsim"
)

func main() {
	d, err := experiments.Prepare("b09", experiments.Params{NP: 2000, NP0: 300, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	c := d.Circuit
	fcs := d.All()
	er := core.Enrich(c, d.P0, d.P1, core.Config{Seed: 1})
	fmt.Printf("b09: %d tests for |P0|=%d, |P1|=%d\n\n", len(er.Tests), len(d.P0), len(d.P1))

	// Manufacture a "device" with random delays and a defect on one
	// detected fault's path.
	rng := rand.New(rand.NewSource(2002))
	delays := make(timingsim.Delays, len(c.Lines))
	for l := range delays {
		delays[l] = 1 + rng.Intn(5)
	}
	target := -1
	for i := range fcs {
		det := false
		for _, tp := range er.Tests {
			sim := tp.Simulate(c)
			for a := range fcs[i].Alts {
				if fcs[i].Alts[a].CoveredBy(sim) {
					det = true
				}
			}
		}
		if det && i >= len(d.P0) { // pick a P1 fault: the enrichment story
			target = i
			break
		}
	}
	if target < 0 {
		log.Fatal("no detected P1 fault to inject")
	}
	f := fcs[target].Fault
	fmt.Printf("injected defect: %s (a P1 fault — only covered thanks to enrichment)\n\n", f.Format(c))

	// Tester run: sample each test at the fault-free period.
	period := 0
	for _, tp := range er.Tests {
		r, err := timingsim.Simulate(c, delays, tp)
		if err != nil {
			log.Fatal(err)
		}
		if s := r.SettleTime(); s > period {
			period = s
		}
	}
	faulty := delays.WithExtraDistributed(f.Path, period+len(f.Path))
	obs := make([]diagnose.Observation, len(er.Tests))
	fails := 0
	for ti, tp := range er.Tests {
		ff, err := timingsim.Simulate(c, delays, tp)
		if err != nil {
			log.Fatal(err)
		}
		fr, err := timingsim.Simulate(c, faulty, tp)
		if err != nil {
			log.Fatal(err)
		}
		for _, po := range c.POs {
			if fr.Waveforms[po].At(period) != ff.Waveforms[po].Settled() {
				obs[ti].Failed = true
				obs[ti].FailingPOs = append(obs[ti].FailingPOs, po)
			}
		}
		if obs[ti].Failed {
			fails++
		}
	}
	fmt.Printf("tester syndrome: %d of %d tests fail\n\n", fails, len(er.Tests))

	cands := diagnose.Diagnose(c, er.Tests, fcs, obs)

	// A physical defect slows a circuit *segment*: every path through
	// the slowed lines is late, so single-path candidates through that
	// segment tie — the diagnosis resolves to the defective region.
	onPath := make(map[int]bool)
	for _, l := range f.Path {
		onPath[l] = true
	}
	overlap := func(fi int) int {
		n := 0
		for _, l := range fcs[fi].Fault.Path {
			if onPath[l] {
				n++
			}
		}
		return n
	}
	fmt.Printf("%4s %6s %5s %5s %5s %8s  candidate\n",
		"#", "score", "expl", "contr", "unexp", "overlap")
	for i, cd := range cands {
		if i >= 5 {
			break
		}
		mark := " "
		if cd.Fault == target {
			mark = "*"
		}
		fmt.Printf("%3d%s %6d %5d %5d %5d %5d/%-2d  %s\n",
			i+1, mark, cd.Score, cd.Explained, cd.Contradicted, cd.Unexplained,
			overlap(cd.Fault), len(f.Path), fcs[cd.Fault].Fault.Format(c))
	}
	fmt.Println("\nAll top candidates run through the slowed segment (high overlap")
	fmt.Println("with the injected path): physical defects are localized to lines,")
	fmt.Println("and the candidates through those lines form the diagnosis.")
}
