// Heuristics: compares the four test generation procedures of Section
// 2.2 of the paper — no compaction, arbitrary order, length-based
// order, value-based order — on one circuit (Tables 3 and 4 for a
// single row).
//
//	go run ./examples/heuristics [circuit]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	name := "b03"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	p := experiments.DefaultParams()
	d, err := experiments.Prepare(name, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d target faults in P0 (paths of length ≥ L_%d)\n\n",
		name, len(d.P0), d.I0)
	fmt.Printf("%-8s %10s %8s %12s %12s\n", "order", "detected", "tests", "sec.accepts", "time")
	for _, h := range core.Heuristics {
		res := core.Generate(d.Circuit, d.P0, core.Config{Heuristic: h, Seed: p.Seed})
		fmt.Printf("%-8s %6d/%3d %8d %12d %12v\n",
			h, res.DetectedCount, len(d.P0), len(res.Tests), res.SecondaryAccepts,
			res.Elapsed.Round(1000000))
	}
	fmt.Println("\nAll three compaction orders should detect about as many faults as")
	fmt.Println("the uncompacted run with far fewer tests; value-based is the order")
	fmt.Println("the enrichment procedure builds on.")
}
