// Motivation: quantifies why the paper enriches test sets with
// next-to-longest-path faults. Path length estimates are inexact; with
// per-line delay variation, a path placed in P1 can be longer than
// every path in P0, so a defect on it escapes a P0-only test set.
//
//	go run ./examples/motivation [circuit]
//
// The example enumerates the longest paths of a circuit, splits them
// into P0/P1 exactly as the ATPG does, and Monte-Carlo-samples per-line
// delay variation to estimate the escape risk — then shows the
// enrichment procedure closing the gap at no extra tests.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faultsim"
	"repro/internal/yield"
)

func main() {
	name := "b09"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	p := experiments.DefaultParams()
	d, err := experiments.Prepare(name, p)
	if err != nil {
		log.Fatal(err)
	}
	c := d.Circuit

	p0Paths := distinctPaths(d, true)
	p1Paths := distinctPaths(d, false)
	fmt.Printf("%s: %d P0 paths (longest), %d P1 paths (next-to-longest)\n\n",
		name, len(p0Paths), len(p1Paths))

	// Two risks, increasing in strength:
	//   displacement — the single critical path lies in P1;
	//   boundary crossing — some P1 path is longer than some P0 path,
	//     i.e. the partition boundary inverted (the paper's "small
	//     errors in the computation of the path lengths can result in
	//     a path that was placed in P1 being longer than a path placed
	//     in P0").
	// The estimation-error model lets each line's true nominal delay
	// deviate from the unit estimate the selection used, with a small
	// manufacturing spread on top.
	fmt.Printf("%-34s %12s %12s\n", "delay model", "P(crit∈P1)", "P(boundary X)")
	for _, rel := range []float64{0.15, 0.30} {
		m := yield.UniformVariation(c, rel)
		disp, err := yield.DisplacementBySet(c, p0Paths, p1Paths, m, 1500, 1)
		if err != nil {
			log.Fatal(err)
		}
		cross, err := yield.BoundaryCrossProb(c, p0Paths, p1Paths, m, 1500, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("±%2.0f%% variation, exact estimates    %11.2f%% %11.2f%%\n",
			100*rel, 100*disp, 100*cross)
	}
	for _, mis := range []float64{0.10, 0.20, 0.30} {
		m := mismodel(c.NumLines(), mis, 42)
		disp, err := yield.DisplacementBySet(c, p0Paths, p1Paths, m, 1500, 1)
		if err != nil {
			log.Fatal(err)
		}
		cross, err := yield.BoundaryCrossProb(c, p0Paths, p1Paths, m, 1500, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("±%2.0f%% estimation error per line     %11.2f%% %11.2f%%\n",
			100*mis, 100*disp, 100*cross)
	}

	// What the enrichment buys against exactly that risk.
	basic := core.Generate(c, d.P0, core.Config{Heuristic: core.ValueBased, Seed: p.Seed})
	all := d.All()
	accidental := faultsim.Count(c, basic.Tests, all)
	er := core.Enrich(c, d.P0, d.P1, core.Config{Seed: p.Seed})
	fmt.Printf("\nP1 coverage: accidental %d/%d -> enriched %d/%d at %+d tests\n",
		accidental-basic.DetectedCount, len(d.P1),
		er.DetectedP1Count, len(d.P1),
		len(er.Tests)-len(basic.Tests))
}

// distinctPaths extracts the unique paths of P0 or P1.
func distinctPaths(d *experiments.CircuitData, p0 bool) [][]int {
	set := d.P1
	if p0 {
		set = d.P0
	}
	seen := make(map[string]bool)
	var out [][]int
	for i := range set {
		k := set[i].Fault.Key()[3:]
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, set[i].Fault.Path)
	}
	return out
}

// mismodel builds a delay model whose per-line true nominal deviates
// from the unit estimate by up to ±mis (deterministic in the seed),
// with a small ±5% manufacturing spread on top.
func mismodel(lines int, mis float64, seed int64) yield.Model {
	r := rand.New(rand.NewSource(seed))
	m := make(yield.Model, lines)
	for i := range m {
		nominal := 1 + mis*(2*r.Float64()-1)
		m[i] = yield.Uniform{Lo: nominal * 0.95, Hi: nominal * 1.05}
	}
	return m
}
