// Timingvalidation: demonstrates, with an event-driven timing
// simulator, the guarantee that makes robust tests worth generating —
// a robust test detects its path delay fault under *every* assignment
// of delays to the rest of the circuit.
//
//	go run ./examples/timingvalidation
//
// For each robustly testable fault of s27 the example generates a
// test, then throws random per-line delays at the circuit, injects
// extra delay on the faulty path, and samples the path's output at the
// fault-free clock period. The sampled value is wrong every time.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/bench"
	"repro/internal/justify"
	"repro/internal/pathenum"
	"repro/internal/robust"
	"repro/internal/timingsim"
)

func main() {
	c := bench.S27()
	res, err := pathenum.Enumerate(c, pathenum.Config{Mode: pathenum.DistancePruned})
	if err != nil {
		log.Fatal(err)
	}
	kept, _ := robust.Screen(c, res.Faults)
	j := justify.New(c, justify.Config{Seed: 1})
	rng := rand.New(rand.NewSource(2026))

	const trials = 50
	faultsChecked, validations := 0, 0
	var sample string
	for i := range kept {
		f := &kept[i].Fault
		test, ok := j.Justify(&kept[i].Alts[0])
		if !ok {
			continue
		}
		faultsChecked++
		for trial := 0; trial < trials; trial++ {
			delays := make(timingsim.Delays, len(c.Lines))
			for l := range delays {
				delays[l] = 1 + rng.Intn(9)
			}
			faultFree, err := timingsim.Simulate(c, delays, test)
			if err != nil {
				log.Fatal(err)
			}
			period := faultFree.SettleTime()
			extra := period // generous: path now clearly exceeds the period
			faulty, err := timingsim.Simulate(c, delays.WithExtraOnPath(f.Path, extra), test)
			if err != nil {
				log.Fatal(err)
			}
			if !timingsim.Detected(faulty, f.Path, period, faultFree) {
				log.Fatalf("MISSED: %s under %v", f.Format(c), delays)
			}
			validations++
			if sample == "" {
				sink := f.Path[len(f.Path)-1]
				sample = fmt.Sprintf("example: fault %s\n  test %v\n  clock period %d, injected +%d on the path\n  output %s: expected %v, sampled %v",
					f.Format(c), test, period, extra,
					c.Lines[sink].Name,
					faultFree.Waveforms[sink].Settled(),
					faulty.Waveforms[sink].At(period))
			}
		}
	}
	fmt.Println(sample)
	fmt.Printf("\nvalidated %d faults × %d random delay assignments = %d detections, 0 misses\n",
		faultsChecked, trials, validations)
}
