// Quickstart: the full path delay fault flow on the paper's running
// example, ISCAS-89 s27.
//
//	go run ./examples/quickstart
//
// It walks exactly the artifacts of the DATE 2002 paper's Sections 2
// and 3: the combinational logic of s27 (Figure 1), the necessary
// value assignments A(p) of the slow-to-rise fault on path
// (2,9,10,15) (the paper's example), the budgeted path enumeration
// (Table 1), the P0/P1 partition, and the enrichment run.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/pathenum"
	"repro/internal/robust"
)

func main() {
	c := bench.S27()
	st := c.Stats()
	fmt.Printf("s27 combinational logic: %d inputs, %d outputs, %d gates, %d lines (branches: %d), depth %d\n\n",
		st.PIs, st.POs, st.Gates, st.Lines, st.Branches, st.Depth)

	// The paper's A(p) example: the slow-to-rise fault on the path the
	// paper numbers (2,9,10,15) — signals G1 → G12 → (branch) → G13.
	path := []int{
		c.LineByName("G1").ID,
		c.LineByName("G12").ID,
		c.LineByName("G12->G13").ID,
		c.LineByName("G13").ID,
	}
	f := faults.Fault{Path: path, Dir: faults.SlowToRise, Length: len(path)}
	alts := robust.Conditions(c, &f)
	fmt.Printf("A(p) for %s:\n  %s\n\n", f.Format(c), alts[0].Format(c))

	// Budgeted enumeration with the paper's Table 1 budget: 20 paths.
	res, err := pathenum.Enumerate(c, pathenum.Config{MaxFaults: 40, Mode: pathenum.Moderate})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budgeted enumeration kept %d paths of lengths %d..%d (Table 1 keeps 18 of 7..10)\n\n",
		len(res.Faults)/2, res.Faults[len(res.Faults)-1].Length, res.Faults[0].Length)

	// Full flow: enumerate everything (s27 is tiny), screen, partition,
	// enrich.
	d, err := experiments.PrepareCircuit(c, experiments.Params{NP: 0, NP0: 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("screened: %d faults kept, %d undetectable eliminated; |P0|=%d |P1|=%d (i0=%d)\n",
		len(d.P0)+len(d.P1), d.Eliminated, len(d.P0), len(d.P1), d.I0)

	er := core.Enrich(c, d.P0, d.P1, core.Config{Seed: 1})
	fmt.Printf("enrichment: %d tests, P0 %d/%d, P0∪P1 %d/%d\n\n",
		len(er.Tests), er.DetectedP0Count, len(d.P0),
		er.DetectedP0Count+er.DetectedP1Count, len(d.P0)+len(d.P1))

	fmt.Println("generated two-pattern tests (inputs G0 G1 G2 G3 G5 G6 G7):")
	for i, tp := range er.Tests {
		fmt.Printf("  t%d: %s\n", i+1, tp)
	}
	_ = os.Stdout
}
