// Customdelay: the paper notes that "other delay models can be
// accommodated by the procedure we use". This example runs the flow
// on s27 under a weighted delay model (NAND/NOR cost 3, other gates 2,
// wires and inverters 1) and shows how the longest-path set — and
// therefore the P0/P1 partition — changes relative to the unit model.
//
//	go run ./examples/customdelay
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/faults"
	"repro/internal/pathenum"
	"repro/internal/robust"
)

func main() {
	c := bench.S27()
	weighted := delay.PerGateType{
		Weights: map[circuit.GateType]int{
			circuit.Nand: 3, circuit.Nor: 3,
			circuit.And: 2, circuit.Or: 2,
			circuit.Not: 1, circuit.Buf: 1,
		},
		Wire: 1,
	}

	for _, m := range []struct {
		name  string
		model delay.Model
	}{
		{"unit (paper default)", delay.Unit{}},
		{"weighted (NAND/NOR=3, AND/OR=2, INV/wire=1)", weighted},
	} {
		res, err := pathenum.Enumerate(c, pathenum.Config{Mode: pathenum.DistancePruned, Model: m.model})
		if err != nil {
			log.Fatal(err)
		}
		kept, eliminated := robust.Screen(c, res.Faults)
		raw := make([]faults.Fault, len(kept))
		for i := range kept {
			raw[i] = kept[i].Fault
		}
		p0f, p1f, i0 := faults.Partition(raw, 10)
		p0 := kept[:len(p0f)]
		p1 := kept[len(p0f):]
		_ = p1f

		fmt.Printf("delay model: %s\n", m.name)
		fmt.Printf("  longest path length %d, %d faults kept (%d undetectable), i0=%d, |P0|=%d, |P1|=%d\n",
			res.Faults[0].Length, len(kept), eliminated, i0, len(p0), len(p1))
		fmt.Printf("  longest paths:\n")
		for i := range kept {
			if kept[i].Fault.Length != res.Faults[0].Length {
				continue
			}
			fmt.Printf("    %s\n", kept[i].Fault.Format(c))
		}
		er := core.Enrich(c, p0, p1, core.Config{Seed: 1})
		fmt.Printf("  enrichment: %d tests, P0 %d/%d, P0∪P1 %d/%d\n\n",
			len(er.Tests), er.DetectedP0Count, len(p0),
			er.DetectedP0Count+er.DetectedP1Count, len(p0)+len(p1))
	}
}
