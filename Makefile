GO ?= go

.PHONY: build test race check chaos obs-smoke bench engine-bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Engine tests under the race detector (cheap; always part of check).
race:
	$(GO) test -race ./internal/engine/... ./internal/faultsim/...

# The fault-injection suite: panic containment, retry/backoff, crash +
# journal replay, load shedding — twice under the race detector.
chaos:
	$(GO) test -race -count=2 -run 'TestChaos|TestWait|TestRetry|TestDo|TestDelay|TestJournal|TestLive|TestOpen' \
		./internal/engine/ ./internal/journal/ ./internal/retry/

# Observability smoke: boot pdfd, run a compacted c17 job, assert the
# Prometheus exposition and the job's span timeline are well-formed.
obs-smoke:
	$(GO) test -race -count=1 -run 'TestObsSmoke' -v ./internal/cli/

# The CI gate: vet + build + full suite under -race.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The ENGINE_BENCH entry in EXPERIMENTS.md.
engine-bench:
	$(GO) test -run='^$$' -bench='Engine|Count' -benchtime=3x ./internal/engine/ ./internal/faultsim/
