GO ?= go

# The committed performance baseline `make bench-check` gates against;
# refresh it with `make bench` and commit the new file (see PERF.md).
BENCH_BASELINE ?= BENCH_2026-08-06.json

.PHONY: build test lint race check chaos chaos-cluster obs-smoke cluster-smoke tenant-smoke bench bench-check go-bench engine-bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The project-invariant static analysis (internal/lint + cmd/pdflint):
# determinism, lock discipline, goroutine hygiene, obs hygiene, plus
# the interprocedural facts engine (lockorder, ctxflow, nondetflow,
# closeleak). Nonzero exit on any finding; also emits pdflint.sarif
# for CI code-scanning upload. See README "Static analysis".
lint:
	$(GO) run ./cmd/pdflint -sarif pdflint.sarif ./...

# The concurrency-bearing packages under the race detector (cheap;
# always part of check). The list is derived from the module itself:
# `pdflint -concurrent` prints every package whose syntax bears a go
# statement, channel op, select or sync primitive, so a new concurrent
# package cannot silently skip the race detector. Falls back to ./...
# if the derivation fails.
race:
	$(GO) test -race $$($(GO) run ./cmd/pdflint -concurrent ./... || echo ./...)

# The fault-injection suite: panic containment, retry/backoff, crash +
# journal replay, load shedding — twice under the race detector.
chaos:
	$(GO) test -race -count=2 -run 'TestChaos|TestWait|TestRetry|TestDo|TestDelay|TestJournal|TestLive|TestOpen' \
		./internal/engine/ ./internal/journal/ ./internal/retry/

# The cluster chaos suite: partitions, injected error rates and backend
# death via the chaosnet fault-injecting transport, pinning no-job-lost,
# breaker open/close, replication and hinted handoff — plus the durable
# store's kill -9 warm-restart acceptance test.
chaos-cluster:
	$(GO) test -race ./internal/chaosnet/
	$(GO) test -race -count=1 -run 'TestChaos' -v ./internal/cluster/
	$(GO) test -race -count=1 -run 'TestPDFDStoreWarmRestart' -v ./internal/cli/

# Observability smoke: boot pdfd, run a compacted c17 job, assert the
# Prometheus exposition and the job's span timeline are well-formed.
obs-smoke:
	$(GO) test -race -count=1 -run 'TestObsSmoke' -v ./internal/cli/

# Cluster smoke: boot two pdfd backends and a pdfd -coordinator over
# them, batch-submit across the fleet, assert owner affinity and a
# cache hit on resubmission.
cluster-smoke:
	$(GO) test -race -count=1 -run 'TestClusterSmoke' -v ./internal/cli/

# Tenant smoke: boot pdfd with a -tenants roster file, prove bearer
# auth (401), per-tenant quota backpressure (429 + shed counters),
# tenant-labelled health/metrics, and the legacy-route sunset with its
# -legacy-routes escape hatch.
tenant-smoke:
	$(GO) test -race -count=1 -run 'TestTenantSmoke' -v ./internal/cli/

# The CI gate: vet + build + full suite under -race + the performance
# regression gate against the committed baseline.
check:
	$(GO) vet ./...
	$(MAKE) lint
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) cluster-smoke
	$(MAKE) tenant-smoke
	$(MAKE) chaos-cluster
	$(MAKE) bench-check

# Run the perfreg suite and write a fresh BENCH_<date>.json snapshot
# (wall time, per-stage span seconds, allocations, test counts, P0/P1
# coverage). Commit the file to refresh the baseline.
bench:
	$(GO) run ./cmd/pdfbench -reps 3

# The regression gate: re-run the suite and diff against the committed
# baseline; exits non-zero on any regression (see PERF.md thresholds).
bench-check:
	$(GO) run ./cmd/pdfbench -reps 3 -baseline $(BENCH_BASELINE)

# The stock go-test microbenchmarks (pre-perfreg behavior of `bench`).
go-bench:
	$(GO) test -bench=. -benchmem ./...

# The ENGINE_BENCH entry in EXPERIMENTS.md.
engine-bench:
	$(GO) test -run='^$$' -bench='Engine|Count' -benchtime=3x ./internal/engine/ ./internal/faultsim/
